//! Graph-level rules: the analyses that need the cross-file call graph.
//!
//! - **T002** — interprocedural `Txn` escape analysis. A `Txn` is a
//!   latency walk in flight; the paper's breakdown figures only sum to
//!   the totals if every walk reaches `.finish(..)`. T001 checks one
//!   function body; T002 follows the transaction across calls: by-value
//!   `Txn` parameters must be sunk, every `Txn`-producing call site must
//!   be consumed (finished, forwarded to a finishing callee, or
//!   returned), and no struct may store a `Txn` (walks complete within
//!   the event that started them).
//! - **D004** — determinism-taint propagation. Wall-clock reads,
//!   ambient randomness, environment reads, thread identity, `{:p}`
//!   formatting and pointer-to-integer casts taint a function; taint
//!   propagates to transitive callers over the call graph. Any tainted
//!   function in a [`SIM_CRATES`] crate is an error — this is what
//!   closes D002's loophole of nondeterminism reached *through* a
//!   helper in an exempt crate.
//! - **W001** — shared-state write audit. Starting from the engine
//!   event handlers (`Machine::{run,step,apply_fault}`), every
//!   reachable `&mut self` method must belong to a type classified into
//!   a mesh-region bucket (driver / per_node / per_page_directory /
//!   interconnect / observability / walk_local); an unclassified type
//!   is an error. [`shared_state_audit`] renders the full inventory as
//!   the `pimdsm-lint-audit-v1` JSON document ROADMAP item 2's parallel
//!   engine is designed against.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::graph::{CallGraph, CallSite, FnSig, SelfKind};
use crate::rules::find_pattern;
use crate::scan::{find_keyword, is_ident_char, match_paren};
use crate::{Diagnostic, Workspace, SIM_CRATES};

fn is_sim(krate: &str) -> bool {
    SIM_CRATES.contains(&krate)
}

/// A by-value `Txn`-carrying type (`Txn`, `Option<Txn>`, …); `&`/`&mut`
/// borrows are explicitly *not* ownership and carry no finish duty.
fn is_txn_ty(ty: &str) -> bool {
    let t = ty.trim();
    !t.starts_with('&') && !find_keyword(t, "Txn").is_empty()
}

fn masked_of<'a>(ws: &'a Workspace, f: &FnSig) -> &'a str {
    &ws.files[f.file].file.masked
}

// ---------------------------------------------------------------- T002

/// Functions that *sink* the by-value `Txn`s handed to them: the
/// designated sink is `Txn::finish`, and the set closes over functions
/// that forward/return their transaction into the set (fixpoint, so
/// recursion cycles that never reach `finish` stay outside).
fn txn_sinks(ws: &Workspace, g: &CallGraph) -> BTreeSet<usize> {
    let mut sinks: BTreeSet<usize> = g
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            f.name == "finish"
                && f.self_ty.as_deref() == Some("Txn")
                && f.self_kind == SelfKind::Value
        })
        .map(|(i, _)| i)
        .collect();
    loop {
        let mut changed = false;
        for (i, f) in g.fns.iter().enumerate() {
            if sinks.contains(&i) {
                continue;
            }
            let txn_params: Vec<&str> = f
                .params
                .iter()
                .filter(|p| is_txn_ty(&p.ty))
                .map(|p| p.name.as_str())
                .collect();
            if txn_params.is_empty() {
                continue;
            }
            if txn_params
                .iter()
                .all(|p| var_is_sunk(ws, g, i, p, f.body_start, &sinks))
            {
                sinks.insert(i);
                changed = true;
            }
        }
        if !changed {
            return sinks;
        }
    }
}

/// Whether `var` (a binding holding a by-value `Txn`) is sunk somewhere
/// in `f`'s body at/after `from`: `var.finish(..)`, forwarded bare to a
/// sinking callee's by-value `Txn` parameter, receiver of a by-value
/// sink method, or returned (function's return type carries `Txn`).
fn var_is_sunk(
    ws: &Workspace,
    g: &CallGraph,
    f_idx: usize,
    var: &str,
    from: usize,
    sinks: &BTreeSet<usize>,
) -> bool {
    let f = &g.fns[f_idx];
    let masked = masked_of(ws, f);
    let body = &masked[from..f.body_end];

    let occurrences = find_keyword(body, var);
    if occurrences.is_empty() {
        return false;
    }
    // `var.finish(` — allowing whitespace around the dot.
    for &at in &occurrences {
        if follows_method_call(body, at + var.len(), "finish") {
            return true;
        }
    }
    // Returned onward: the caller's caller owns the consumption duty
    // (checked at that call site by the produced-Txn analysis).
    if is_txn_ty(&f.ret) {
        for ret in find_keyword(body, "return") {
            let stmt_end = body[ret..].find(';').map_or(body.len(), |p| ret + p);
            if !find_keyword(&body[ret..stmt_end], var).is_empty() {
                return true;
            }
        }
        // Trailing-expression return: `var` in the body's final
        // statement (no `;` between it and the closing brace).
        if let Some(&last) = occurrences.last() {
            if !body[last + var.len()..].contains(';') {
                return true;
            }
        }
    }
    // Forwarded bare into a sinking callee.
    for &ci in &g.calls_of[f_idx] {
        let call = &g.calls[ci];
        if call.name_at < from {
            continue;
        }
        // Receiver of a by-value sink method (`var.seal(..)` style).
        if call.is_method
            && receiver_ident(masked, call) == Some(var)
            && call
                .callees
                .iter()
                .any(|c| sinks.contains(c) && g.fns[*c].self_kind == SelfKind::Value)
        {
            return true;
        }
        for (pos, (_, text)) in g.call_args(masked, call).iter().enumerate() {
            if *text != var {
                continue;
            }
            if call.callees.iter().any(|&c| {
                sinks.contains(&c) && g.fns[c].params.get(pos).is_some_and(|p| is_txn_ty(&p.ty))
            }) {
                return true;
            }
        }
    }
    false
}

/// The identifier receiving a method call (`recv.name(..)`), if plain.
fn receiver_ident<'a>(masked: &'a str, call: &CallSite) -> Option<&'a str> {
    let b = masked.as_bytes();
    if !call.is_method || call.name_at == 0 {
        return None;
    }
    let dot = call.name_at - 1;
    let mut s = dot;
    while s > 0 && is_ident_char(b[s - 1]) {
        s -= 1;
    }
    if s == dot || (s > 0 && b[s - 1] == b'.') {
        return None;
    }
    Some(&masked[s..dot])
}

/// Whether, starting right after a binding/expression at `after`, the
/// next tokens are `.method(` for the given method (whitespace allowed).
fn follows_method_call(text: &str, mut after: usize, method: &str) -> bool {
    let b = text.as_bytes();
    while after < b.len() && (b[after] as char).is_whitespace() {
        after += 1;
    }
    if after >= b.len() || b[after] != b'.' {
        return false;
    }
    after += 1;
    while after < b.len() && (b[after] as char).is_whitespace() {
        after += 1;
    }
    if !text[after..].starts_with(method) {
        return false;
    }
    after += method.len();
    // `(` must follow immediately (modulo whitespace): `.finish_all(`
    // leaves an ident char here and correctly fails to match.
    while after < b.len() && (b[after] as char).is_whitespace() {
        after += 1;
    }
    after < b.len() && b[after] == b'('
}

/// Walks a method chain after a call's closing paren; true if some link
/// is `.finish(..)`.
fn chain_reaches_finish(masked: &str, mut at: usize) -> bool {
    let b = masked.as_bytes();
    loop {
        while at < b.len() && ((b[at] as char).is_whitespace() || b[at] == b'?') {
            at += 1;
        }
        if at >= b.len() || b[at] != b'.' {
            return false;
        }
        at += 1;
        while at < b.len() && (b[at] as char).is_whitespace() {
            at += 1;
        }
        let s = at;
        while at < b.len() && is_ident_char(b[at]) {
            at += 1;
        }
        if s == at {
            return false;
        }
        let name = &masked[s..at];
        while at < b.len() && (b[at] as char).is_whitespace() {
            at += 1;
        }
        if at >= b.len() || b[at] != b'(' {
            continue; // field access link — keep walking the chain
        }
        let Some(close) = match_paren(masked, at) else {
            return false;
        };
        if name == "finish" {
            return true;
        }
        at = close + 1;
    }
}

/// T002 — interprocedural Txn escape analysis. See the module docs.
pub fn t002(ws: &Workspace, g: &CallGraph) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let sinks = txn_sinks(ws, g);
    let txn_returning: BTreeSet<usize> = g
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| is_txn_ty(&f.ret))
        .map(|(i, _)| i)
        .collect();

    // (a) By-value Txn parameters must be sunk.
    for (i, f) in g.fns.iter().enumerate() {
        if !is_sim(&f.krate) || f.is_test {
            continue;
        }
        for p in f.params.iter().filter(|p| is_txn_ty(&p.ty)) {
            if !var_is_sunk(ws, g, i, &p.name, f.body_start, &sinks) {
                out.push(Diagnostic {
                    rule: "T002",
                    rel: f.rel.clone(),
                    line: f.line,
                    msg: format!(
                        "by-value `Txn` parameter `{}` of `{}` never reaches .finish(...) on any call-graph path: the walk's span, statistics and latency breakdown are dropped when it goes out of scope",
                        p.name,
                        f.qual_name()
                    ),
                });
            }
        }
    }

    // (b) Every Txn-producing call site must be consumed.
    for call in &g.calls {
        let caller = &g.fns[call.caller];
        if !is_sim(&caller.krate) || caller.is_test {
            continue;
        }
        let file = &ws.files[caller.file].file;
        if file.in_test_region(call.name_at) {
            continue;
        }
        let produces = call.callees.iter().any(|c| txn_returning.contains(c))
            || (call.qualifier.as_deref() == Some("Txn") && call.name == "start");
        if !produces {
            continue;
        }
        if !call_result_consumed(ws, g, call, &sinks) {
            out.push(Diagnostic {
                rule: "T002",
                rel: caller.rel.clone(),
                line: file.line_of(call.name_at),
                msg: format!(
                    "the `Txn` produced by `{}` in `{}` is dropped without reaching .finish(...): finish it, forward it to a finishing callee, or return it to the caller",
                    call.name,
                    caller.qual_name()
                ),
            });
        }
    }

    // (c) No struct stores a Txn: walks complete within the event that
    // started them, or the parallel engine cannot window them.
    for entry in &ws.files {
        if !is_sim(&entry.krate) || entry.is_test_code {
            continue;
        }
        for (name, bs, be) in entry.file.struct_spans() {
            if name == "Txn" || entry.file.in_test_region(bs) {
                continue;
            }
            for at in find_keyword(&entry.file.masked[bs..be], "Txn") {
                out.push(Diagnostic {
                    rule: "T002",
                    rel: entry.file.rel.clone(),
                    line: entry.file.line_of(bs + at),
                    msg: format!(
                        "struct `{name}` stores a `Txn`: latency walks must complete within the event that started them — store the finished `Access` instead"
                    ),
                });
            }
        }
    }
    out
}

/// Consumption analysis for one Txn-producing call site.
fn call_result_consumed(
    ws: &Workspace,
    g: &CallGraph,
    call: &CallSite,
    sinks: &BTreeSet<usize>,
) -> bool {
    let caller = &g.fns[call.caller];
    let masked = masked_of(ws, caller);
    let b = masked.as_bytes();

    // The producing callee may itself be the sink (`x.finish(..)`).
    if call.callees.iter().any(|c| sinks.contains(c)) {
        return true;
    }
    // `Txn::start(..).probe(..).finish(..)` chains.
    if chain_reaches_finish(masked, call.close + 1) {
        return true;
    }

    // Where does the expression start (include receiver / qualifier)?
    let mut expr_start = call.name_at;
    if let Some(q) = &call.qualifier {
        expr_start = expr_start.saturating_sub(q.len() + 2);
    }
    if call.is_method {
        // Walk back over the receiver chain conservatively: treat the
        // method result as the statement's expression.
        let mut s = call.name_at - 1; // the `.`
        while s > 0 && (is_ident_char(b[s - 1]) || b[s - 1] == b'.') {
            s -= 1;
        }
        expr_start = s;
    }

    // Statement head: text from the previous `;`/`{`/`}` to the expr.
    let stmt_start = masked[..expr_start]
        .rfind([';', '{', '}'])
        .map_or(caller.body_start, |p| p + 1);
    let head = masked[stmt_start.max(caller.body_start)..expr_start].trim();

    // `let [mut] v [: T] = <call>` — track the binding onward.
    if let Some(rest) = head.strip_prefix("let").map(str::trim_start) {
        if head.ends_with('=') {
            let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
            let var: String = rest
                .chars()
                .take_while(|&c| is_ident_char(c as u8))
                .collect();
            if !var.is_empty() && var != "_" {
                return var_is_sunk(ws, g, call.caller, &var, call.close, sinks);
            }
            return false; // `let _ = Txn::start(..)` — an explicit drop
        }
    }
    // Reassignment `v = <call>` of a plain local.
    if head.ends_with('=') && !head.ends_with("==") {
        let lhs = head[..head.len() - 1].trim_end();
        if !lhs.is_empty() && lhs.bytes().all(is_ident_char) {
            return var_is_sunk(ws, g, call.caller, lhs, call.close, sinks);
        }
        return false; // `self.field = Txn::start(..)` — an escape
    }
    // `return <call>` — the produced Txn flows to our own caller, whose
    // call site is checked in turn.
    if head.ends_with("return") || head.contains("return ") {
        return true;
    }
    // Argument position: `outer(.., <call>, ..)` — consumed only when
    // the enclosing call sinks a by-value Txn at this position.
    if head.ends_with('(') || head.ends_with(',') {
        // Innermost enclosing call: the candidate with the latest `(`.
        let outer = g.calls_of[call.caller]
            .iter()
            .map(|&ci| &g.calls[ci])
            .filter(|c| c.paren < expr_start && c.close > call.close)
            .max_by_key(|c| c.paren);
        let Some(outer) = outer else {
            return false;
        };
        let args = g.call_args(masked, outer);
        let Some(pos) = args
            .iter()
            .position(|(off, text)| *off <= expr_start && expr_start < *off + text.len())
        else {
            return false;
        };
        return outer.callees.iter().any(|&c| {
            sinks.contains(&c) && g.fns[c].params.get(pos).is_some_and(|p| is_txn_ty(&p.ty))
        });
    }
    // Bare statement `Txn::start(..);` drops the walk.
    let mut after = call.close + 1;
    while after < b.len() && (b[after] as char).is_whitespace() {
        after += 1;
    }
    if after < b.len() && b[after] == b';' && head.is_empty() {
        return false;
    }
    // Trailing expression / match scrutinee / other composite shapes:
    // treat as consumed when the function returns a Txn, otherwise be
    // conservative and accept (T001 still covers the body-level check).
    true
}

// ---------------------------------------------------------------- D004

/// Patterns whose mere presence in a body taints the function.
const D004_PATTERNS: &[&str] = &[
    "Instant::now",
    "SystemTime",
    "thread_rng",
    "rand::random",
    "RandomState",
    "env::var",
    "env::vars",
    "env::args",
    "thread::current",
    "ThreadId",
];

const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// A pointer-to-integer cast inside one statement: `.. as *const T ..
/// as usize` — addresses vary run to run, so any value derived this way
/// is nondeterministic.
fn ptr_int_cast(body: &str) -> Option<usize> {
    for pat in ["as *const", "as *mut"] {
        for at in find_pattern(body, pat) {
            let stmt_end = body[at..].find(';').map_or(body.len(), |p| at + p);
            let rest = &body[at + pat.len()..stmt_end];
            for a in find_keyword(rest, "as") {
                let after = rest[a + 2..].trim_start();
                let ident: String = after
                    .chars()
                    .take_while(|&c| is_ident_char(c as u8))
                    .collect();
                if INT_TYPES.contains(&ident.as_str()) {
                    return Some(at);
                }
            }
        }
    }
    None
}

/// D004 — determinism-taint propagation. See the module docs.
pub fn d004(ws: &Workspace, g: &CallGraph) -> Vec<Diagnostic> {
    // Direct sources: description of the first pattern hit per function.
    let mut source: BTreeMap<usize, String> = BTreeMap::new();
    for (i, f) in g.fns.iter().enumerate() {
        let file = &ws.files[f.file].file;
        let body = &file.masked[f.body_start..f.body_end];
        if let Some((pat, at)) = D004_PATTERNS
            .iter()
            .filter_map(|pat| find_pattern(body, pat).first().map(|&a| (*pat, a)))
            .min_by_key(|&(_, a)| a)
        {
            source.insert(
                i,
                format!("`{pat}` at {}:{}", f.rel, file.line_of(f.body_start + at)),
            );
            continue;
        }
        if let Some(s) = file
            .strings
            .iter()
            .find(|s| s.offset >= f.body_start && s.offset < f.body_end && s.value.contains(":p}"))
        {
            source.insert(
                i,
                format!(
                    "`{{:p}}` pointer formatting at {}:{}",
                    f.rel,
                    file.line_of(s.offset)
                ),
            );
            continue;
        }
        if let Some(at) = ptr_int_cast(body) {
            source.insert(
                i,
                format!(
                    "pointer-to-integer cast at {}:{}",
                    f.rel,
                    file.line_of(f.body_start + at)
                ),
            );
        }
    }

    // Propagate taint up the reverse call edges (deterministic order).
    let mut tainted: BTreeSet<usize> = source.keys().copied().collect();
    let mut via: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue: VecDeque<usize> = tainted.iter().copied().collect();
    while let Some(f) = queue.pop_front() {
        for &caller in &g.callers_of[f] {
            if tainted.insert(caller) {
                via.insert(caller, f);
                queue.push_back(caller);
            }
        }
    }

    let mut out = Vec::new();
    for &i in &tainted {
        let f = &g.fns[i];
        if !is_sim(&f.krate) || f.is_test {
            continue;
        }
        let mut chain = vec![i];
        let mut cur = i;
        while let Some(&next) = via.get(&cur) {
            chain.push(next);
            cur = next;
        }
        let path = chain
            .iter()
            .map(|&j| format!("`{}`", g.fns[j].qual_name()))
            .collect::<Vec<_>>()
            .join(" -> ");
        out.push(Diagnostic {
            rule: "D004",
            rel: f.rel.clone(),
            line: f.line,
            msg: format!(
                "`{}` in simulation crate `{}` is determinism-tainted: {path} reaches {} — thread simulated cycles / pimdsm_engine::rng through instead",
                f.qual_name(),
                f.krate,
                source[&cur]
            ),
        });
    }
    out
}

// ---------------------------------------------------------------- W001

/// Mesh-region partition buckets, in render order.
pub const REGIONS: &[&str] = &[
    "driver",
    "per_node",
    "per_page_directory",
    "interconnect",
    "observability",
    "walk_local",
];

/// Engine event-handler roots: the `Machine` methods every simulated
/// event enters through.
const ROOT_NAMES: &[&str] = &["apply_fault", "run", "step"];

/// Mesh-region bucket of a non-composite type, if classified.
fn type_region(ty: &str) -> Option<&'static str> {
    Some(match ty {
        // Run-global driver/scheduler state: the event queue, thread
        // contexts, synchronization objects, workload generators and
        // fault machinery. Parallelization must shard or lock these.
        "SystemBox" | "EventQueue" | "Timeline" | "SimRng" | "ArrivalGen" | "Zipf"
        | "FaultRuntime" | "FaultSchedule" | "ThreadState" | "BarrierState" | "LockState"
        | "NodeSet" | "NodeList" | "Bfs" | "PageRank" | "ChunkGen" => "driver",
        // State owned by one mesh node: caches, attraction memories,
        // node stores, DRAM devices and their service queues.
        "AttractionMemory" | "SetAssocCache" | "PrivCaches" | "PNodeStore" | "OnChipLru"
        | "DNode" | "NumaNode" | "Dram" | "KeyedQueue" | "Server" | "Role" | "Evicted"
        | "DrainAll" => "per_node",
        // Directory state keyed by page/line: the home-node maps and
        // sharer sets conservative windows must order access to.
        "PageTable" | "ComaDir" | "DirEntry" | "ChunkedIndex" | "Census" => "per_page_directory",
        // The mesh network and link contention state.
        "Network" | "Mesh" => "interconnect",
        // Counters/traces: merge-at-end state, trivially partitionable.
        "Tracer" | "ProtoStats" | "NetStats" | "SvcStats" | "DNodeStats" | "RecoveryStats"
        | "Histogram" | "EpochSeries" => "observability",
        // Walk-private accumulation and ephemeral cursors, dead by the
        // event's end (`Iter` is the KeyedQueue read cursor — its `&mut
        // self` advances the cursor, not the queue).
        "Txn" | "Access" | "Iter" => "walk_local",
        _ => return None,
    })
}

/// Types whose fields span several regions; classified field-by-field.
fn is_composite(ty: &str) -> bool {
    matches!(
        ty,
        "Machine" | "Fabric" | "AggSystem" | "ComaSystem" | "NumaSystem"
    )
}

/// Region of a composite's field path (`segs` are the field names after
/// the root). `None` means pass-through (writes are inventoried at the
/// target type's own methods).
fn composite_region(ty: &str, segs: &[String]) -> Option<&'static str> {
    let seg = segs.first().map(String::as_str)?;
    Some(match (ty, seg) {
        ("Machine", "tracer" | "svc") => "observability",
        // The boxed system's writes are inventoried per system type.
        ("Machine", "system") => return None,
        ("Machine", _) => "driver",
        ("Fabric", "pages" | "recovering") => "per_page_directory",
        ("Fabric", "net") => "interconnect",
        ("Fabric", "stats" | "tracer" | "retries") => "observability",
        ("Fabric", _) => "driver",
        (_, "fab") => return composite_region("Fabric", &segs[1..]),
        (_, "nodes" | "ctrls" | "roles") => "per_node",
        (_, "dir") => "per_page_directory",
        (_, _) => "driver",
    })
}

/// One inventoried write-capable access.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct WriteRecord {
    /// Region bucket, or `"unclassified"`.
    pub region: String,
    /// Writing function, `Type::name` form.
    pub func: String,
    /// Defining file.
    pub rel: String,
    /// 1-indexed line of the function.
    pub line: usize,
    /// Place paths written/borrowed through (`self.queue`,
    /// `fab.stats`, …), sorted and deduplicated.
    pub paths: Vec<String>,
}

/// The audit model W001 and `--audit shared-state` share.
#[derive(Debug)]
pub struct Audit {
    /// Qualified root names, sorted.
    pub roots: Vec<String>,
    /// Functions reachable from the roots inside simulation crates.
    pub reachable: usize,
    /// Reachable `&mut self` methods.
    pub mut_self: usize,
    /// Classified write inventory.
    pub writers: Vec<WriteRecord>,
    /// `(type, func, rel, line)` of reachable `&mut self` methods on
    /// unclassified types.
    pub unclassified: Vec<(String, String, String, usize)>,
}

/// Builds the reachability + write inventory model.
pub fn audit_model(ws: &Workspace, g: &CallGraph) -> Audit {
    let roots: Vec<usize> = g
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            f.self_ty.as_deref() == Some("Machine")
                && ROOT_NAMES.contains(&f.name.as_str())
                && is_sim(&f.krate)
                && !f.is_test
        })
        .map(|(i, _)| i)
        .collect();

    let mut visited: BTreeSet<usize> = BTreeSet::new();
    let mut queue: VecDeque<usize> = roots.iter().copied().collect();
    for &r in &roots {
        visited.insert(r);
    }
    while let Some(i) = queue.pop_front() {
        for &ci in &g.calls_of[i] {
            for &callee in &g.calls[ci].callees {
                let f = &g.fns[callee];
                if is_sim(&f.krate) && !f.is_test && visited.insert(callee) {
                    queue.push_back(callee);
                }
            }
        }
    }

    let mut writers: BTreeMap<(String, String, String, usize), BTreeSet<String>> = BTreeMap::new();
    let mut unclassified: BTreeSet<(String, String, String, usize)> = BTreeSet::new();
    let mut mut_self = 0usize;

    for &i in &visited {
        let f = &g.fns[i];
        if f.self_kind == SelfKind::RefMut {
            mut_self += 1;
            if let Some(ty) = &f.self_ty {
                if !is_composite(ty) && type_region(ty).is_none() {
                    unclassified.insert((ty.clone(), f.qual_name(), f.rel.clone(), f.line));
                }
            }
        }
        for (root, ty, segs) in write_paths(ws, g, i) {
            let region = if is_composite(&ty) {
                match composite_region(&ty, &segs) {
                    Some(r) => r,
                    None => continue, // pass-through borrow
                }
            } else {
                type_region(&ty).unwrap_or("unclassified")
            };
            let path = if segs.is_empty() {
                root.clone()
            } else {
                format!("{root}.{}", segs.join("."))
            };
            writers
                .entry((region.to_string(), f.qual_name(), f.rel.clone(), f.line))
                .or_default()
                .insert(path);
        }
    }

    let mut root_names: Vec<String> = roots.iter().map(|&r| g.fns[r].qual_name()).collect();
    root_names.sort();
    root_names.dedup();

    Audit {
        roots: root_names,
        reachable: visited.len(),
        mut_self,
        writers: writers
            .into_iter()
            .map(|((region, func, rel, line), paths)| WriteRecord {
                region,
                func,
                rel,
                line,
                paths: paths.into_iter().collect(),
            })
            .collect(),
        unclassified: unclassified.into_iter().collect(),
    }
}

/// Write-capable place paths in one function's body, rooted at `self`
/// and at `&mut T` parameters: direct assignments (`x.f = ..`,
/// compound ops), `&mut x.f` borrows, and method calls through the path
/// unless every candidate callee takes `&self` (pure reads).
fn write_paths(ws: &Workspace, g: &CallGraph, i: usize) -> Vec<(String, String, Vec<String>)> {
    let f = &g.fns[i];
    let masked = masked_of(ws, f);
    let body = &masked[f.body_start..f.body_end];
    let b = body.as_bytes();

    // Method-call sites by absolute name offset, for mutability lookup.
    let call_at: BTreeMap<usize, &CallSite> = g.calls_of[i]
        .iter()
        .map(|&ci| &g.calls[ci])
        .map(|c| (c.name_at, c))
        .collect();

    let mut roots: Vec<(String, String)> = Vec::new(); // (binding, type)
    if f.self_kind == SelfKind::RefMut || f.self_kind == SelfKind::Value {
        if let Some(ty) = &f.self_ty {
            roots.push(("self".to_string(), ty.clone()));
        }
    }
    for p in &f.params {
        if let Some(base) = mut_ref_base(&p.ty) {
            roots.push((p.name.clone(), base));
        }
    }

    let mut out = Vec::new();
    for (root, ty) in &roots {
        for at in find_keyword(body, root) {
            // `&mut root` bare borrow: a pass-through; composites skip
            // it, plain types record it with no field path.
            let before = body[..at].trim_end();
            let borrowed = before.ends_with("&mut");

            // Parse the place path: .field / .0 / [index] links.
            let mut j = at + root.len();
            let mut segs: Vec<String> = Vec::new();
            let mut is_write = borrowed;
            loop {
                if j < b.len() && b[j] == b'[' {
                    let mut depth = 0i32;
                    while j < b.len() {
                        match b[j] {
                            b'[' => depth += 1,
                            b']' => {
                                depth -= 1;
                                if depth == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    continue;
                }
                if j >= b.len() || b[j] != b'.' {
                    break;
                }
                let seg_start = j + 1;
                let mut k = seg_start;
                while k < b.len() && is_ident_char(b[k]) {
                    k += 1;
                }
                if k == seg_start {
                    break;
                }
                // `.method(` — record unless every candidate is `&self`.
                if k < b.len() && b[k] == b'(' {
                    let abs = f.body_start + seg_start;
                    if let Some(call) = call_at.get(&abs) {
                        let all_pure = !call.callees.is_empty()
                            && call
                                .callees
                                .iter()
                                .all(|&c| g.fns[c].self_kind == SelfKind::Ref);
                        if !all_pure {
                            is_write = true;
                        }
                    } else {
                        is_write = true; // unresolved (Vec::push, …): assume mutating
                    }
                    break;
                }
                segs.push(body[seg_start..k].to_string());
                j = k;
            }
            if !is_write {
                // Assignment operator after the place path?
                let mut k = j;
                while k < b.len() && (b[k] as char).is_whitespace() {
                    k += 1;
                }
                is_write = match b.get(k) {
                    Some(b'=') => !matches!(b.get(k + 1), Some(b'=' | b'>')),
                    Some(op @ (b'+' | b'-' | b'*' | b'/' | b'%' | b'&' | b'|' | b'^')) => {
                        let _ = op;
                        matches!(b.get(k + 1), Some(b'='))
                    }
                    Some(b'<') => body[k..].starts_with("<<="),
                    Some(b'>') => body[k..].starts_with(">>="),
                    _ => false,
                };
            }
            if is_write && (!segs.is_empty() || !is_composite(ty)) {
                out.push((root.clone(), ty.clone(), segs));
            }
        }
    }
    out
}

/// Base type name of a `&mut T` parameter type, if nameable.
fn mut_ref_base(ty: &str) -> Option<String> {
    let rest = ty.trim().strip_prefix("&mut")?.trim_start();
    let rest = rest.strip_prefix("dyn ").unwrap_or(rest);
    let base: &str = rest
        .split(|c: char| c == '<' || c.is_whitespace())
        .next()
        .unwrap_or(rest);
    let base = base.rsplit("::").next().unwrap_or(base);
    if base.is_empty() || base.starts_with(|c: char| c.is_lowercase()) {
        return None;
    }
    // Single-letter generics are unknowable.
    if base.len() <= 1 {
        return None;
    }
    Some(base.to_string())
}

/// W001 — every event-handler-reachable `&mut self` method must belong
/// to a mesh-region-classified type.
pub fn w001(ws: &Workspace, g: &CallGraph) -> Vec<Diagnostic> {
    let audit = audit_model(ws, g);
    audit
        .unclassified
        .iter()
        .map(|(ty, func, rel, line)| Diagnostic {
            rule: "W001",
            rel: rel.clone(),
            line: *line,
            msg: format!(
                "`{func}` is reachable from the engine event handlers and mutates `{ty}`, which is not in the W001 mesh-region table: classify it in crates/lint/src/semantic.rs (driver / per_node / per_page_directory / interconnect / observability / walk_local) so the parallel-engine audit stays complete"
            ),
        })
        .collect()
}

/// Renders the `pimdsm-lint-audit-v1` JSON document.
pub fn shared_state_audit(ws: &Workspace, g: &CallGraph) -> String {
    let audit = audit_model(ws, g);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"pimdsm-lint-audit-v1\",\n");
    out.push_str(&format!(
        "  \"roots\": [{}],\n",
        audit
            .roots
            .iter()
            .map(|r| format!("\"{}\"", crate::emit::escape(r)))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!("  \"reachable_fns\": {},\n", audit.reachable));
    out.push_str(&format!("  \"mut_self_fns\": {},\n", audit.mut_self));
    out.push_str("  \"regions\": [\n");
    for (ri, region) in REGIONS.iter().enumerate() {
        let mut writers: Vec<&WriteRecord> = audit
            .writers
            .iter()
            .filter(|w| w.region == *region)
            .collect();
        writers.sort_by(|a, b| (&a.rel, a.line, &a.func).cmp(&(&b.rel, b.line, &b.func)));
        out.push_str(&format!("    {{\"region\": \"{region}\", \"writers\": ["));
        for (i, w) in writers.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "      {{\"fn\": \"{}\", \"file\": \"{}\", \"line\": {}, \"paths\": [{}]}}",
                crate::emit::escape(&w.func),
                crate::emit::escape(&w.rel),
                w.line,
                w.paths
                    .iter()
                    .map(|p| format!("\"{}\"", crate::emit::escape(p)))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        out.push_str(if writers.is_empty() { "]}" } else { "\n    ]}" });
        out.push_str(if ri + 1 == REGIONS.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"unclassified\": [");
    for (i, (ty, func, rel, line)) in audit.unclassified.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"type\": \"{}\", \"fn\": \"{}\", \"file\": \"{}\", \"line\": {}}}",
            crate::emit::escape(ty),
            crate::emit::escape(func),
            crate::emit::escape(rel),
            line
        ));
    }
    out.push_str(if audit.unclassified.is_empty() {
        "]\n"
    } else {
        "\n  ]\n"
    });
    out.push_str("}\n");
    out
}
