//! `pimdsm-lint` — determinism & protocol-invariant static analysis.
//!
//! The simulator's evaluation rests on cycle-exact, reproducible runs,
//! and two whole bug classes that threaten that are statically visible in
//! the source: *nondeterminism* (unordered collections and ambient
//! time/randomness on the simulation path) and *invariant holes*
//! (transaction walks that never `finish`, report fields dropped from the
//! JSON round-trip, trace events no consumer knows about). This crate
//! scans the workspace source directly — it is dependency-free by design
//! (the build environment is offline), so instead of a `syn` AST it uses
//! a masking lexer plus just enough structure extraction; see
//! [`scan`].
//!
//! Rules (see [`rules::RULES`]):
//!
//! | ID   | invariant |
//! |------|-----------|
//! | D001 | no `HashMap`/`HashSet` in simulation crates |
//! | D002 | no `Instant::now`/`SystemTime`/`thread_rng` outside lab/bench/tests |
//! | D004 | no determinism taint reaching simulation crates through any call chain |
//! | T001 | every constructed `Txn` reaches `.finish(...)` |
//! | T002 | `Txn`s passed/returned/stored across functions reach `.finish(...)` |
//! | W001 | event-handler-reachable `&mut` types are mesh-region classified |
//! | S001 | every pub stats field appears in both `to_json` and `from_json` |
//! | O001 | emitted trace names/categories ⊆ obs registry, and vice versa |
//! | P001 | entered `phase!(...)` names ⊆ prof phase registry, and vice versa |
//! | L000 | `pimdsm-lint:` directives are well-formed |
//!
//! The per-function rules work straight off [`scan`]'s masked text; the
//! cross-function rules (D004/T002/W001) run on [`graph`]'s symbol
//! table and resolved call graph, built once per [`run_all`].
//! [`semantic`] additionally renders the `--audit shared-state` JSON
//! report, and [`emit`] the `--format json` diagnostics document.
//!
//! Suppression: `// pimdsm-lint: allow(D001, "reason")` on the offending
//! line, or alone on the line directly above it. The reason is mandatory.

use std::fmt;
use std::path::{Path, PathBuf};

pub mod emit;
pub mod graph;
pub mod rules;
pub mod scan;
pub mod semantic;

pub use rules::RULES;
use scan::SourceFile;

/// Crates whose `src/` is simulation path for rule scoping.
pub const SIM_CRATES: &[&str] = &[
    "engine",
    "faults",
    "mem",
    "net",
    "proto",
    "core",
    "svc",
    "workloads",
];

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule id (`D001`, …).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub rel: String,
    /// 1-indexed line.
    pub line: usize,
    /// Human explanation.
    pub msg: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: error[{}]: {}",
            self.rel, self.line, self.rule, self.msg
        )
    }
}

/// A scanned file plus its rule-scoping classification.
#[derive(Debug)]
pub struct FileEntry {
    /// The parsed source.
    pub file: SourceFile,
    /// Owning crate, named by its `crates/<name>` directory (`core` for
    /// the `pimdsm` package); the workspace-root harness is `repro`.
    pub krate: String,
    /// Whether the file is test/bench/example code (rules D001/D002/T001
    /// and the O001 emission check skip those; `#[cfg(test)]` modules
    /// inside `src/` are additionally skipped per-region).
    pub is_test_code: bool,
}

/// The scanned workspace.
#[derive(Debug)]
pub struct Workspace {
    /// Workspace root directory.
    pub root: PathBuf,
    /// Scanned files, in deterministic (sorted-path) order.
    pub files: Vec<FileEntry>,
}

impl Workspace {
    /// Scans every workspace `.rs` file under `crates/*/{src,tests,benches}`,
    /// `src/`, `tests/` and `examples/`. Skips `target/`, hidden
    /// directories and the lint fixture corpus (which is known-bad on
    /// purpose).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the directory walk.
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut paths = Vec::new();
        walk(root, &mut paths)?;
        paths.sort();
        let mut ws = Workspace {
            root: root.to_path_buf(),
            files: Vec::new(),
        };
        for path in paths {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let raw = std::fs::read_to_string(&path)?;
            ws.add_source(path, rel, raw);
        }
        Ok(ws)
    }

    /// An empty workspace (for tests building synthetic inputs).
    pub fn empty(root: &Path) -> Workspace {
        Workspace {
            root: root.to_path_buf(),
            files: Vec::new(),
        }
    }

    /// Adds one source text, classifying it from its relative path.
    pub fn add_source(&mut self, path: PathBuf, rel: String, raw: String) {
        let (krate, is_test_code) = classify(&rel);
        self.files.push(FileEntry {
            file: SourceFile::parse(path, rel, raw),
            krate,
            is_test_code,
        });
    }

    /// Adds a source with an explicit classification — used by the
    /// fixture tests to scan a known-bad snippet *as if* it lived in a
    /// given crate's `src/`.
    pub fn add_source_as(&mut self, path: PathBuf, rel: String, raw: String, krate: &str) {
        self.files.push(FileEntry {
            file: SourceFile::parse(path, rel, raw),
            krate: krate.to_string(),
            is_test_code: false,
        });
    }
}

/// Classifies a workspace-relative path into `(crate, is_test_code)`.
fn classify(rel: &str) -> (String, bool) {
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        ["crates", name, "src", ..] => ((*name).to_string(), false),
        ["crates", name, "tests" | "benches" | "examples", ..] => ((*name).to_string(), true),
        ["src", ..] => ("repro".to_string(), false),
        ["tests" | "examples" | "benches", ..] => ("repro".to_string(), true),
        _ => ("other".to_string(), true),
    }
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name == "results" || name.starts_with('.')
            {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs every rule and filters out findings suppressed by a well-formed
/// allow directive. The result is sorted by `(file, line, rule)`.
pub fn run_all(ws: &Workspace) -> Vec<Diagnostic> {
    let graph = graph::CallGraph::build(ws);
    let mut diags: Vec<Diagnostic> = [
        rules::d001(ws),
        rules::d002(ws),
        rules::d003(ws),
        rules::t001(ws),
        rules::s001(ws),
        rules::o001(ws),
        rules::p001(ws),
        rules::l000(ws),
        semantic::t002(ws, &graph),
        semantic::d004(ws, &graph),
        semantic::w001(ws, &graph),
    ]
    .into_iter()
    .flatten()
    .filter(|d| {
        // L000 (a broken directive) cannot be suppressed by a directive.
        d.rule == "L000"
            || !ws
                .files
                .iter()
                .find(|e| e.file.rel == d.rel)
                .is_some_and(|e| e.file.is_allowed(d.rule, d.line))
    })
    .collect();
    diags.sort_by(|a, b| (&a.rel, a.line, a.rule).cmp(&(&b.rel, b.line, b.rule)));
    diags.dedup();
    diags
}

/// Locates the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
