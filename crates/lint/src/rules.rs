//! The rule set.
//!
//! Every rule has a stable ID, emits `file:line` diagnostics, and honors
//! the `// pimdsm-lint: allow(<rule>, "<reason>")` escape hatch (applied
//! by the driver in [`crate::run_all`], not here).

use std::collections::BTreeSet;

use crate::scan::{find_keyword, is_ident_char, match_paren, split_args, FnSpan, SourceFile};
use crate::{Diagnostic, FileEntry, Workspace, SIM_CRATES};

/// Rule table: `(id, one-line description)` — the contract DESIGN.md
/// documents and `pimdsm-lint --list` prints.
pub const RULES: &[(&str, &str)] = &[
    (
        "D001",
        "no unordered collections (HashMap/HashSet) in simulation crates; use BTreeMap/BTreeSet/Vec",
    ),
    (
        "D002",
        "no wall-clock or ambient randomness (Instant::now, SystemTime, thread_rng, RandomState) outside lab/bench/test code",
    ),
    (
        "D003",
        "no BinaryHeap in simulation crates (use the engine's bucket queue); arena `slab` fields must expose iter_deterministic()",
    ),
    (
        "D004",
        "determinism taint: wall-clock/randomness/env/thread-id/pointer-derived values must not reach simulation crates through any call chain",
    ),
    (
        "T001",
        "every function that constructs a Txn must reach .finish(...) on its return paths",
    ),
    (
        "T002",
        "interprocedural Txn escape: by-value Txn params, Txn-producing call sites and struct fields must reach .finish(...) across the call graph",
    ),
    (
        "S001",
        "every pub stats field must appear in both to_json and from_json of its struct",
    ),
    (
        "O001",
        "every trace event name/category emitted must be registered in pimdsm-obs (and vice versa)",
    ),
    (
        "P001",
        "every prof::phase!(...) name must be registered in pimdsm-prof's phase registry (and vice versa)",
    ),
    (
        "W001",
        "shared-state audit: every &mut type reachable from the engine event handlers must be classified into a mesh-region bucket",
    ),
    (
        "L000",
        "pimdsm-lint directives themselves must be well-formed: allow(<RULE>, \"reason\")",
    ),
];

/// Crates whose `src/` is simulation path: a nondeterministic collection
/// here can leak into simulated time.
fn is_sim(krate: &str) -> bool {
    SIM_CRATES.contains(&krate)
}

/// Crates allowed to read wall clocks / entropy: orchestration and bench
/// tooling, the host-side profiler (its wall times live in explicitly
/// non-deterministic fields), the analyzer itself, and the offline
/// dependency shims.
fn d002_exempt(krate: &str) -> bool {
    matches!(
        krate,
        "lab" | "bench" | "prof" | "lint" | "criterion-shim" | "proptest-shim"
    )
}

/// D001 — unordered collections in simulation crates.
pub fn d001(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for entry in &ws.files {
        if !is_sim(&entry.krate) || entry.is_test_code {
            continue;
        }
        for pat in ["HashMap", "HashSet"] {
            for off in find_keyword(&entry.file.masked, pat) {
                if entry.file.in_test_region(off) {
                    continue;
                }
                out.push(Diagnostic {
                    rule: "D001",
                    rel: entry.file.rel.clone(),
                    line: entry.file.line_of(off),
                    msg: format!(
                        "unordered `{pat}` in simulation crate `{}`: iteration order is per-process random and can leak into simulated time; use BTreeMap/BTreeSet/Vec",
                        entry.krate
                    ),
                });
            }
        }
    }
    out
}

/// D002 — wall-clock time and ambient randomness outside tooling.
pub fn d002(ws: &Workspace) -> Vec<Diagnostic> {
    const PATTERNS: &[&str] = &[
        "Instant::now",
        "SystemTime",
        "thread_rng",
        "rand::random",
        "RandomState",
    ];
    let mut out = Vec::new();
    for entry in &ws.files {
        if d002_exempt(&entry.krate) || entry.is_test_code {
            continue;
        }
        for pat in PATTERNS {
            for off in find_pattern(&entry.file.masked, pat) {
                if entry.file.in_test_region(off) {
                    continue;
                }
                out.push(Diagnostic {
                    rule: "D002",
                    rel: entry.file.rel.clone(),
                    line: entry.file.line_of(off),
                    msg: format!(
                        "`{pat}` in crate `{}`: wall-clock time and ambient randomness are nondeterministic; thread simulated cycles / pimdsm_engine::rng through instead",
                        entry.krate
                    ),
                });
            }
        }
    }
    out
}

/// D003 — hot-path data-structure discipline in simulation crates.
///
/// Two checks. (a) No `BinaryHeap`: equal-priority pops come out in
/// heap-shape order (insertion-history dependent), and its per-push node
/// churn allocates on the hottest simulator path —
/// `pimdsm_engine::EventQueue` (a bucket calendar with explicit
/// `(time, seq)` FIFO ties) is the replacement. (b) A file that declares
/// an arena (a field named `slab`) must expose an `iter_deterministic()`
/// accessor: slab sweeps otherwise tempt callers into ad-hoc orders
/// (free-list order, occupancy order) that leak insertion history into
/// simulated time.
pub fn d003(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for entry in &ws.files {
        if !is_sim(&entry.krate) || entry.is_test_code {
            continue;
        }
        for off in find_keyword(&entry.file.masked, "BinaryHeap") {
            if entry.file.in_test_region(off) {
                continue;
            }
            out.push(Diagnostic {
                rule: "D003",
                rel: entry.file.rel.clone(),
                line: entry.file.line_of(off),
                msg: format!(
                    "`BinaryHeap` in simulation crate `{}`: equal-priority pops depend on heap shape and every push allocates; use pimdsm_engine::EventQueue (deterministic (time, seq) order, pooled buckets)",
                    entry.krate
                ),
            });
        }
        let slab_uses: Vec<usize> = find_keyword(&entry.file.masked, "slab")
            .into_iter()
            .filter(|&off| !entry.file.in_test_region(off))
            .collect();
        if !slab_uses.is_empty() && !entry.file.masked.contains("iter_deterministic(") {
            out.push(Diagnostic {
                rule: "D003",
                rel: entry.file.rel.clone(),
                line: entry.file.line_of(slab_uses[0]),
                msg: format!(
                    "arena `slab` in simulation crate `{}` has no `iter_deterministic()` accessor: without one canonical index order, slab sweeps leak insertion history into simulated time",
                    entry.krate
                ),
            });
        }
    }
    out
}

/// T001 — a constructed `Txn` must reach `.finish(...)`.
///
/// Source-level approximation of "on all return paths": the body must
/// call `.finish(` at least once, and every `return` statement *after*
/// the first construction must either call `.finish(` itself or move the
/// transaction variable onward (a callee then owns finishing it). A
/// dropped `Txn` silently loses the walk's span, statistics, and the
/// breakdown-sums-to-total guarantee.
pub fn t001(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for entry in &ws.files {
        if !is_sim(&entry.krate) || entry.is_test_code {
            continue;
        }
        if !entry.file.masked.contains("Txn::start") {
            continue;
        }
        for f in entry.file.fns() {
            if entry.file.in_test_region(f.start) {
                continue;
            }
            out.extend(check_txn_fn(entry, &f));
        }
    }
    out
}

fn check_txn_fn(entry: &FileEntry, f: &FnSpan) -> Vec<Diagnostic> {
    let body = &entry.file.masked[f.body_start..f.body_end];
    let starts = find_pattern(body, "Txn::start");
    if starts.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    if !body.contains(".finish(") {
        // Report every construction site, not just the first: each is an
        // independently dropped walk.
        for &s in &starts {
            out.push(Diagnostic {
                rule: "T001",
                rel: entry.file.rel.clone(),
                line: entry.file.line_of(f.body_start + s),
                msg: format!(
                    "`{}` constructs a Txn but never calls .finish(...): the walk's trace span, read statistics and latency breakdown are silently dropped",
                    f.name
                ),
            });
        }
        return out;
    }
    // Per-construction binding variable: `let [mut] tx = Txn::start(..)`.
    // Resolved against each construction's own statement head, so a
    // second construction shadowing the first gets its own entry instead
    // of all checks keying off the first `let`.
    let bindings: Vec<Option<String>> = starts.iter().map(|&s| txn_binding_var(body, s)).collect();

    // Shadowing drop: construction `i`'s binding is rebound by a later
    // construction while the first walk was never touched in between —
    // the first Txn is dropped at the rebind, with no return statement
    // involved. Reported against construction `i` (the dropped walk).
    for (i, &s) in starts.iter().enumerate() {
        let Some(v) = bindings[i].as_deref() else {
            continue;
        };
        let Some(&s2) = starts
            .iter()
            .skip(i + 1)
            .find(|&&s2| txn_binding_var(body, s2).as_deref() == Some(v))
        else {
            continue;
        };
        let seg_start = body[s..].find(';').map_or(body.len(), |p| s + p + 1);
        let seg_end = body[..s2].rfind([';', '{', '}']).map_or(s2, |p| p + 1);
        let untouched =
            seg_start >= seg_end || find_keyword(&body[seg_start..seg_end], v).is_empty();
        if untouched {
            out.push(Diagnostic {
                rule: "T001",
                rel: entry.file.rel.clone(),
                line: entry.file.line_of(f.body_start + s),
                msg: format!(
                    "Txn bound to `{v}` in `{}` is shadowed by a later `let {v} = Txn::start(...)` without being finished or moved: the first walk is dropped at the rebind",
                    f.name
                ),
            });
        }
    }

    for ret in find_keyword(body, "return") {
        if ret < starts[0] {
            continue;
        }
        let stmt_end = body[ret..].find(';').map_or(body.len(), |p| ret + p);
        let stmt = &body[ret..stmt_end];
        let finishes = stmt.contains(".finish(");
        let moves_txn = starts.iter().zip(&bindings).any(|(&s, v)| {
            s < ret
                && v.as_deref()
                    .is_some_and(|v| !find_keyword(stmt, v).is_empty())
        });
        if !finishes && !moves_txn {
            out.push(Diagnostic {
                rule: "T001",
                rel: entry.file.rel.clone(),
                line: entry.file.line_of(f.body_start + ret),
                msg: format!(
                    "return path in `{}` after Txn::start neither calls .finish(...) nor moves the transaction: the in-flight walk is dropped unaccounted",
                    f.name
                ),
            });
        }
    }
    out
}

/// The variable bound by the `let` statement a `Txn::start` at `at`
/// belongs to, if that construction is directly let-bound.
fn txn_binding_var(body: &str, at: usize) -> Option<String> {
    let stmt_start = body[..at].rfind([';', '{', '}']).map_or(0, |p| p + 1);
    let head = body[stmt_start..at].trim();
    let rest = head.strip_prefix("let")?;
    if !rest.starts_with(char::is_whitespace) || !head.ends_with('=') {
        return None;
    }
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name: String = rest
        .chars()
        .take_while(|&c| is_ident_char(c as u8))
        .collect();
    (!name.is_empty()).then_some(name)
}

/// S001 — report-schema sync: every `pub` field of a struct that has both
/// a `to_json` and a `from_json` in its defining file must be mentioned
/// in *both* bodies (as the field identifier or the `"field"` JSON key).
/// Catches the silently-dropped-on-cache-re-render class.
pub fn s001(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for entry in &ws.files {
        if entry.is_test_code {
            continue;
        }
        let file = &entry.file;
        let structs = file.pub_structs();
        if structs.is_empty() {
            continue;
        }
        let impls = file.impls();
        let fns = file.fns();
        for st in &structs {
            let body_of = |fn_name: &str| -> Option<(usize, usize)> {
                fns.iter()
                    .find(|f| {
                        f.name == fn_name
                            && impls.iter().any(|im| {
                                im.ty == st.name
                                    && f.start >= im.body_start
                                    && f.body_end <= im.body_end
                            })
                    })
                    .map(|f| (f.body_start, f.body_end))
            };
            let (Some(to), Some(from)) = (body_of("to_json"), body_of("from_json")) else {
                continue;
            };
            for field in &st.pub_fields {
                for (what, (bs, be)) in [("to_json", to), ("from_json", from)] {
                    let mentioned = !find_keyword(&file.masked[bs..be], field).is_empty()
                        || file
                            .strings
                            .iter()
                            .any(|s| s.offset >= bs && s.offset < be && s.value == *field);
                    if !mentioned {
                        out.push(Diagnostic {
                            rule: "S001",
                            rel: file.rel.clone(),
                            line: file.line_of(bs),
                            msg: format!(
                                "field `{}` of `{}` is not handled in {what}: it would be silently dropped on a report round-trip (cache re-render)",
                                field, st.name
                            ),
                        });
                    }
                }
            }
        }
    }
    out
}

/// O001 — trace-event registry sync.
///
/// Every event name / category a simulation crate passes to
/// `Tracer::span` / `Tracer::instant` must be registered in
/// `pimdsm_obs::trace::registry` (where the consumers — trace filters,
/// suite assertions, Perfetto queries — look them up), and every
/// registered entry must actually be emitted somewhere. A typo'd
/// category would otherwise vanish silently from every filter.
pub fn o001(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let Some((categories, names)) = load_registry(ws) else {
        out.push(Diagnostic {
            rule: "O001",
            rel: "crates/obs/src/trace.rs".into(),
            line: 1,
            msg: "trace registry (registry::CATEGORIES / registry::EVENT_NAMES) not found in pimdsm-obs"
                .into(),
        });
        return out;
    };

    let mut emitted_cats: BTreeSet<String> = BTreeSet::new();
    let mut emitted_names: BTreeSet<String> = BTreeSet::new();

    for entry in &ws.files {
        if !is_sim(&entry.krate) || entry.is_test_code {
            continue;
        }
        let file = &entry.file;
        let fns = file.fns();
        for needle in [".span(", ".instant("] {
            let mut search = 0usize;
            while let Some(rel_off) = file.masked[search..].find(needle) {
                let at = search + rel_off;
                let open = at + needle.len() - 1;
                search = open + 1;
                if file.in_test_region(at) {
                    continue;
                }
                let Some(close) = match_paren(&file.masked, open) else {
                    continue;
                };
                let args = split_args(&file.masked[open + 1..close]);
                // span(pid, tid, name, cat, ts, dur, args) /
                // instant(pid, tid, name, cat, ts, args).
                if args.len() < 4 {
                    continue;
                }
                for (idx, registry, kind) in
                    [(2usize, &names, "event name"), (3, &categories, "category")]
                {
                    let (arg_off, arg_text) = args[idx];
                    let abs = open + 1 + arg_off;
                    match literal_in(file, abs, abs + arg_text.len()) {
                        Some(value) => {
                            if registry.contains(&value) {
                                if kind == "category" {
                                    emitted_cats.insert(value);
                                } else {
                                    emitted_names.insert(value);
                                }
                            } else {
                                out.push(Diagnostic {
                                    rule: "O001",
                                    rel: file.rel.clone(),
                                    line: file.line_of(abs),
                                    msg: format!(
                                        "trace {kind} \"{value}\" is not registered in pimdsm_obs::trace::registry — it would silently escape every trace filter"
                                    ),
                                });
                            }
                        }
                        None => {
                            // Non-literal argument (e.g. a `match`-selected
                            // category): fall back to checking every
                            // dotted literal in the enclosing function.
                            let span = fns
                                .iter()
                                .filter(|f| f.body_start <= at && at < f.body_end)
                                .map(|f| (f.body_start, f.body_end))
                                .next_back();
                            if let Some((bs, be)) = span {
                                for s in &file.strings {
                                    if s.offset < bs || s.offset >= be || !is_dotted(&s.value) {
                                        continue;
                                    }
                                    if categories.contains(&s.value) {
                                        emitted_cats.insert(s.value.clone());
                                    } else if names.contains(&s.value) {
                                        emitted_names.insert(s.value.clone());
                                    } else {
                                        out.push(Diagnostic {
                                            rule: "O001",
                                            rel: file.rel.clone(),
                                            line: file.line_of(s.offset),
                                            msg: format!(
                                                "trace literal \"{}\" near a non-literal {kind} argument is not registered in pimdsm_obs::trace::registry",
                                                s.value
                                            ),
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        // Literals emitted anywhere in sim src count toward the converse
        // check even when passed through helpers (e.g. handler_name).
        for s in &file.strings {
            if file.in_test_region(s.offset) {
                continue;
            }
            if categories.contains(&s.value) {
                emitted_cats.insert(s.value.clone());
            }
            if names.contains(&s.value) {
                emitted_names.insert(s.value.clone());
            }
        }
    }

    for (registry, emitted, kind) in [
        (&categories, &emitted_cats, "category"),
        (&names, &emitted_names, "event name"),
    ] {
        for value in registry.iter() {
            if !emitted.contains(value) {
                out.push(Diagnostic {
                    rule: "O001",
                    rel: "crates/obs/src/trace.rs".into(),
                    line: 1,
                    msg: format!(
                        "registered trace {kind} \"{value}\" is never emitted by any simulation crate (stale registry entry)"
                    ),
                });
            }
        }
    }
    out
}

/// P001 — profiling-phase registry sync.
///
/// `pimdsm_prof::phase!` panics at runtime on a name missing from
/// `pimdsm_prof::phase::registry::PHASES` — this rule moves that failure
/// to lint time, and conversely flags registered phases no non-test code
/// ever enters (stale entries that would clutter every bench document).
pub fn p001(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let Some(phases) = load_phase_registry(ws) else {
        out.push(Diagnostic {
            rule: "P001",
            rel: "crates/prof/src/phase.rs".into(),
            line: 1,
            msg: "phase registry (registry::PHASES) not found in pimdsm-prof".into(),
        });
        return out;
    };

    let mut entered: BTreeSet<String> = BTreeSet::new();
    const NEEDLE: &str = "phase!(";
    for entry in &ws.files {
        // The prof crate holds the macro definition, the registry itself,
        // and doc examples — not real instrumentation sites.
        if entry.krate == "prof" || entry.is_test_code {
            continue;
        }
        let file = &entry.file;
        let mut search = 0usize;
        while let Some(rel_off) = file.masked[search..].find(NEEDLE) {
            let at = search + rel_off;
            let open = at + NEEDLE.len() - 1;
            search = open + 1;
            // `my_phase!(` is someone else's macro.
            if at > 0 && is_ident_char(file.masked.as_bytes()[at - 1]) {
                continue;
            }
            if file.in_test_region(at) {
                continue;
            }
            let Some(close) = match_paren(&file.masked, open) else {
                continue;
            };
            match literal_in(file, open + 1, close) {
                Some(value) => {
                    if phases.contains(&value) {
                        entered.insert(value);
                    } else {
                        out.push(Diagnostic {
                            rule: "P001",
                            rel: file.rel.clone(),
                            line: file.line_of(at),
                            msg: format!(
                                "profiling phase \"{value}\" is not registered in pimdsm_prof::phase::registry::PHASES — entering it panics at runtime"
                            ),
                        });
                    }
                }
                None => out.push(Diagnostic {
                    rule: "P001",
                    rel: file.rel.clone(),
                    line: file.line_of(at),
                    msg: "phase!(...) takes a string literal so the phase set is statically checkable; found a non-literal argument"
                        .into(),
                }),
            }
        }
    }

    for value in phases.iter() {
        if !entered.contains(value) {
            out.push(Diagnostic {
                rule: "P001",
                rel: "crates/prof/src/phase.rs".into(),
                line: 1,
                msg: format!(
                    "registered profiling phase \"{value}\" is never entered by any phase!(...) outside tests (stale registry entry)"
                ),
            });
        }
    }
    out
}

/// Extracts `registry::PHASES` from the prof phase module.
fn load_phase_registry(ws: &Workspace) -> Option<BTreeSet<String>> {
    let file = ws
        .files
        .iter()
        .map(|e| &e.file)
        .find(|f| f.rel.ends_with("prof/src/phase.rs"))?;
    let at = file.masked.find("pub const PHASES")?;
    // Skip past the `=` so the `[` of the `&[&str]` type annotation is
    // not mistaken for the array itself.
    let eq = at + file.masked[at..].find('=')?;
    let open = eq + file.masked[eq..].find('[')?;
    let close = open + file.masked[open..].find(']')?;
    Some(
        file.strings
            .iter()
            .filter(|s| s.offset > open && s.offset < close)
            .map(|s| s.value.clone())
            .collect(),
    )
}

/// L000 — malformed `pimdsm-lint:` directives anywhere in the workspace.
pub fn l000(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for entry in &ws.files {
        for bad in &entry.file.bad_allows {
            out.push(Diagnostic {
                rule: "L000",
                rel: entry.file.rel.clone(),
                line: bad.line,
                msg: "malformed pimdsm-lint directive: expected `pimdsm-lint: allow(<RULE>, \"non-empty reason\")`"
                    .into(),
            });
        }
    }
    out
}

/// Extracts `registry::CATEGORIES` and `registry::EVENT_NAMES` from the
/// obs trace module.
fn load_registry(ws: &Workspace) -> Option<(BTreeSet<String>, BTreeSet<String>)> {
    let file = ws
        .files
        .iter()
        .map(|e| &e.file)
        .find(|f| f.rel.ends_with("obs/src/trace.rs"))?;
    let grab = |marker: &str| -> Option<BTreeSet<String>> {
        let at = file.masked.find(marker)?;
        // Skip past the `=` so the `[` of the `&[&str]` type annotation
        // is not mistaken for the array itself.
        let eq = at + file.masked[at..].find('=')?;
        let open = eq + file.masked[eq..].find('[')?;
        let close = open + file.masked[open..].find(']')?;
        Some(
            file.strings
                .iter()
                .filter(|s| s.offset > open && s.offset < close)
                .map(|s| s.value.clone())
                .collect(),
        )
    };
    Some((
        grab("pub const CATEGORIES")?,
        grab("pub const EVENT_NAMES")?,
    ))
}

/// `proto.handler`-shaped: at least one dot separating identifier chunks.
fn is_dotted(s: &str) -> bool {
    !s.is_empty()
        && s.contains('.')
        && s.split('.')
            .all(|part| !part.is_empty() && part.bytes().all(is_ident_char))
}

/// The string literal spanning exactly the (trimmed) argument text, if
/// the argument is a plain literal.
fn literal_in(file: &SourceFile, start: usize, end: usize) -> Option<String> {
    let trimmed = file.masked[start..end].trim();
    if !trimmed.starts_with('"') {
        return None;
    }
    file.strings
        .iter()
        .find(|s| s.offset >= start && s.offset < end)
        .map(|s| s.value.clone())
}

/// Like [`find_keyword`] but for multi-token patterns such as
/// `Instant::now` — boundaries are checked only at the pattern's ends.
pub(crate) fn find_pattern(text: &str, pat: &str) -> Vec<usize> {
    let b = text.as_bytes();
    let mut out = Vec::new();
    let mut search = 0usize;
    while let Some(rel) = text[search..].find(pat) {
        let at = search + rel;
        let before_ok = at == 0 || !is_ident_char(b[at - 1]);
        let after = at + pat.len();
        let after_ok = after >= b.len() || !is_ident_char(b[after]);
        if before_ok && after_ok {
            out.push(at);
        }
        search = at + pat.len();
    }
    out
}
