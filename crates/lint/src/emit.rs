//! Hand-rolled JSON output (the crate is dependency-free by design).
//!
//! Two documents share the escaping here: the `--format json`
//! diagnostics report (schema `pimdsm-lint-diagnostics-v1`) and the
//! `--audit shared-state` report (schema `pimdsm-lint-audit-v1`, built
//! in [`crate::semantic`]). Both are deterministic — sorted entries, no
//! timestamps, no absolute paths — so CI can diff them across runs.

use crate::{Diagnostic, Workspace, RULES};

/// Escapes a string for a JSON string literal (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The `--format json` document: every unsuppressed diagnostic plus the
/// full allow-directive inventory (each with its mandatory reason), so
/// findings and their suppressions are greppable across CI runs.
pub fn diagnostics_json(ws: &Workspace, diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"pimdsm-lint-diagnostics-v1\",\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", ws.files.len()));
    out.push_str(&format!(
        "  \"rules\": [{}],\n",
        RULES
            .iter()
            .map(|(id, _)| format!("\"{id}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));

    out.push_str("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            d.rule,
            escape(&d.rel),
            d.line,
            escape(&d.msg)
        ));
    }
    out.push_str(if diags.is_empty() { "],\n" } else { "\n  ],\n" });

    // Allow inventory, sorted by (file, line, rule). Files are already
    // in sorted-path order; directives per file are keyed by line.
    let mut allows: Vec<(String, usize, String, String)> = Vec::new();
    for entry in &ws.files {
        for ds in entry.file.allows.values() {
            for d in ds {
                allows.push((
                    entry.file.rel.clone(),
                    d.line,
                    d.rule.clone(),
                    d.reason.clone(),
                ));
            }
        }
    }
    allows.sort();
    out.push_str("  \"allows\": [");
    for (i, (rel, line, rule, reason)) in allows.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}",
            escape(rule),
            escape(rel),
            line,
            escape(reason)
        ));
    }
    out.push_str(if allows.is_empty() { "]\n" } else { "\n  ]\n" });
    out.push_str("}\n");
    out
}
