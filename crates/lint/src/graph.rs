//! Cross-file symbol table and resolved call graph.
//!
//! [`CallGraph::build`] lifts the per-file structure from [`crate::scan`]
//! into a workspace-level model: every function definition with its
//! parsed signature (self kind, parameter names/type text, return type
//! text, enclosing `impl` type), and every call site with its callee
//! candidates resolved by name. The resolver is deliberately
//! *conservative over-approximate* — still no `syn`, no type inference:
//!
//! - `Type::method(..)` resolves to functions of that name inside an
//!   `impl Type` (or `impl Trait for Type`) block.
//! - `module::func(..)` resolves to free functions defined in a file
//!   named `module.rs` (or `module/mod.rs`); unknown lowercase paths
//!   (`std::mem::take`, …) resolve to nothing rather than to a
//!   same-named workspace function.
//! - `self.method(..)` prefers the enclosing impl's own method; other
//!   `recv.method(..)` calls resolve to *every* dep-visible method of
//!   that name. For trait objects (`dyn MemSystem`) this lands on every
//!   implementor — exactly the over-approximation the interprocedural
//!   rules want. Precise trait dispatch is documented out of scope.
//! - Plain `func(..)` resolves to free functions only (same file, then
//!   same crate, then dependency crates) — never to methods, so common
//!   names like `drop` cannot leak across the free/method boundary.
//!
//! Candidates are always filtered by the workspace's crate-dependency
//! relation (`crate_deps`): a call in `engine` can never resolve into
//! `lab`, so tooling-side wall-clock use cannot taint the sim path.

use std::collections::BTreeMap;

use crate::scan::{find_keyword, is_ident_char, match_paren, split_args};
use crate::Workspace;

/// How a function receives `self`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelfKind {
    /// Free function or associated function without a receiver.
    None,
    /// `&self`.
    Ref,
    /// `&mut self`.
    RefMut,
    /// `self` / `mut self` by value.
    Value,
}

/// One non-self parameter: name (as written, `mut` stripped) and the
/// raw type text after the `:`.
#[derive(Debug, Clone)]
pub struct ParamSig {
    /// Binding name (may be a pattern for destructuring params).
    pub name: String,
    /// Type text, whitespace-trimmed, otherwise verbatim.
    pub ty: String,
}

/// One function definition, workspace-wide.
#[derive(Debug, Clone)]
pub struct FnSig {
    /// Index into `Workspace::files`.
    pub file: usize,
    /// Owning crate (same classification as [`crate::FileEntry`]).
    pub krate: String,
    /// Workspace-relative path of the defining file.
    pub rel: String,
    /// Function name.
    pub name: String,
    /// Enclosing `impl` self type, if any.
    pub self_ty: Option<String>,
    /// How the function takes `self`.
    pub self_kind: SelfKind,
    /// Non-self parameters in order.
    pub params: Vec<ParamSig>,
    /// Return type text (empty when the function returns `()`); a
    /// standalone `Self` is resolved to the impl type.
    pub ret: String,
    /// Byte offset of the `fn` keyword.
    pub start: usize,
    /// Byte offset just past the opening `{`.
    pub body_start: usize,
    /// Byte offset of the closing `}`.
    pub body_end: usize,
    /// 1-indexed line of the `fn` keyword.
    pub line: usize,
    /// Test/bench/example code, or inside a `#[cfg(test)]` region.
    pub is_test: bool,
}

impl FnSig {
    /// `Type::name` when in an impl, bare `name` otherwise.
    pub fn qual_name(&self) -> String {
        match &self.self_ty {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Index of the calling [`FnSig`].
    pub caller: usize,
    /// Callee name as written.
    pub name: String,
    /// Path segment directly before `::` (with `Self` already resolved
    /// to the caller's impl type), if path-qualified.
    pub qualifier: Option<String>,
    /// `recv.name(..)` form.
    pub is_method: bool,
    /// Method call whose receiver is literally `self`.
    pub recv_self: bool,
    /// Byte offset of the callee name.
    pub name_at: usize,
    /// Byte offset of the opening `(`.
    pub paren: usize,
    /// Byte offset of the matching `)`.
    pub close: usize,
    /// Resolved candidate definitions (indices into `CallGraph::fns`).
    pub callees: Vec<usize>,
}

/// The workspace call graph.
#[derive(Debug)]
pub struct CallGraph {
    /// Every function definition, in file order.
    pub fns: Vec<FnSig>,
    /// Every resolved-or-not call site.
    pub calls: Vec<CallSite>,
    /// Per function: indices into `calls` made from its body.
    pub calls_of: Vec<Vec<usize>>,
    /// Per function: indices of functions with a call site resolving to
    /// it (reverse edges, sorted, deduplicated).
    pub callers_of: Vec<Vec<usize>>,
    /// Function indices by bare name.
    pub by_name: BTreeMap<String, Vec<usize>>,
}

/// Direct dependencies (plus the crate itself) per workspace crate, by
/// the `crates/<name>` directory naming `Workspace` classification uses.
/// `None` means "unknown or depends on everything" — no filtering. Kept
/// in sync with the `Cargo.toml`s by a test in `tests/graph.rs`.
pub fn crate_deps(krate: &str) -> Option<&'static [&'static str]> {
    match krate {
        "engine" => Some(&["engine"]),
        "prof" => Some(&["prof"]),
        "lint" => Some(&["lint"]),
        "obs" => Some(&["obs", "engine"]),
        "mem" => Some(&["mem", "engine"]),
        "workloads" => Some(&["workloads", "engine"]),
        "net" => Some(&["net", "engine", "obs"]),
        "faults" => Some(&["faults", "engine", "obs"]),
        "svc" => Some(&["svc", "engine", "obs", "prof", "workloads"]),
        "proto" => Some(&["proto", "engine", "faults", "mem", "net", "obs", "prof"]),
        "core" => Some(&[
            "core",
            "engine",
            "faults",
            "mem",
            "net",
            "obs",
            "prof",
            "proto",
            "svc",
            "workloads",
        ]),
        "bench" => Some(&[
            "bench",
            "lab",
            "core",
            "engine",
            "faults",
            "mem",
            "net",
            "obs",
            "prof",
            "proto",
            "svc",
            "workloads",
        ]),
        // lab and the root harness pull in nearly everything; fixtures
        // and synthetic test crates are unknown. No filtering.
        _ => None,
    }
}

/// Rust keywords (plus `self`/`Self`) that can directly precede a `(`
/// without being a call.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "Self", "static", "struct", "super", "trait", "type", "unsafe", "use",
    "where", "while", "yield",
];

impl CallGraph {
    /// Builds the symbol table and resolves every call site.
    pub fn build(ws: &Workspace) -> CallGraph {
        let mut fns: Vec<FnSig> = Vec::new();
        // Per file: indices into `fns`.
        let mut file_fns: Vec<Vec<usize>> = Vec::with_capacity(ws.files.len());

        for (fi, entry) in ws.files.iter().enumerate() {
            let impls = entry.file.impls();
            let mut here = Vec::new();
            for f in entry.file.fns() {
                let self_ty = impls
                    .iter()
                    .filter(|im| im.body_start <= f.start && f.start < im.body_end)
                    .max_by_key(|im| im.body_start)
                    .map(|im| im.ty.clone());
                let (self_kind, params, ret) = parse_signature(
                    &entry.file.masked,
                    f.start,
                    f.body_start,
                    self_ty.as_deref(),
                );
                here.push(fns.len());
                fns.push(FnSig {
                    file: fi,
                    krate: entry.krate.clone(),
                    rel: entry.file.rel.clone(),
                    name: f.name,
                    self_ty,
                    self_kind,
                    params,
                    ret,
                    start: f.start,
                    body_start: f.body_start,
                    body_end: f.body_end,
                    line: entry.file.line_of(f.start),
                    is_test: entry.is_test_code || entry.file.in_test_region(f.start),
                });
            }
            file_fns.push(here);
        }

        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }

        // Extract and attribute call sites.
        let mut calls: Vec<CallSite> = Vec::new();
        let mut calls_of: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        for (fi, entry) in ws.files.iter().enumerate() {
            for mut raw in extract_calls(&entry.file.masked) {
                // Innermost function whose body contains the name.
                let Some(&caller) = file_fns[fi]
                    .iter()
                    .filter(|&&i| fns[i].body_start <= raw.name_at && raw.name_at < fns[i].body_end)
                    .max_by_key(|&&i| fns[i].body_start)
                else {
                    continue; // macro definition body, const initializer, …
                };
                if raw.qualifier.as_deref() == Some("Self") {
                    raw.qualifier = fns[caller].self_ty.clone();
                }
                raw.caller = caller;
                calls_of[caller].push(calls.len());
                calls.push(raw);
            }
        }

        // Resolve.
        let mut callers_of: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        for call in &mut calls {
            call.callees = resolve(&fns, &by_name, call);
            for &callee in &call.callees {
                callers_of[callee].push(call.caller);
            }
        }
        for v in &mut callers_of {
            v.sort_unstable();
            v.dedup();
        }

        CallGraph {
            fns,
            calls,
            calls_of,
            callers_of,
            by_name,
        }
    }

    /// The argument texts of a call, as `(abs_offset, trimmed_text)`.
    pub fn call_args<'a>(&self, masked: &'a str, call: &CallSite) -> Vec<(usize, &'a str)> {
        split_args(&masked[call.paren + 1..call.close])
            .into_iter()
            .map(|(off, text)| (call.paren + 1 + off, text.trim()))
            .collect()
    }
}

/// Parses the signature text between the `fn` keyword and the body
/// brace: self kind, parameters, and return type (with `Self` resolved).
fn parse_signature(
    masked: &str,
    start: usize,
    body_start: usize,
    self_ty: Option<&str>,
) -> (SelfKind, Vec<ParamSig>, String) {
    let b = masked.as_bytes();
    let mut i = start + 2;
    while i < body_start && (b[i] as char).is_whitespace() {
        i += 1;
    }
    while i < body_start && is_ident_char(b[i]) {
        i += 1;
    }
    // Parameter list: first `(` outside the generics' angle brackets.
    // `->` inside `Fn(..) -> T` bounds balances its own `<`-free arrow,
    // so simple depth counting stays net-correct for the opening paren.
    let mut angle = 0i32;
    let mut open = None;
    while i < body_start {
        match b[i] {
            b'<' => angle += 1,
            b'>' => angle -= 1,
            b'(' if angle <= 0 => {
                open = Some(i);
                break;
            }
            _ => {}
        }
        i += 1;
    }
    let Some(open) = open else {
        return (SelfKind::None, Vec::new(), String::new());
    };
    let Some(close) = match_paren(masked, open) else {
        return (SelfKind::None, Vec::new(), String::new());
    };

    let mut self_kind = SelfKind::None;
    let mut params = Vec::new();
    for (k, (_, arg)) in split_args(&masked[open + 1..close]).iter().enumerate() {
        let t = arg.trim();
        if k == 0 {
            if let Some(kind) = self_param_kind(t) {
                self_kind = kind;
                continue;
            }
        }
        let Some(c) = t.find(':') else { continue };
        let name = t[..c].trim();
        let name = name.strip_prefix("mut ").unwrap_or(name).trim();
        params.push(ParamSig {
            name: name.to_string(),
            ty: t[c + 1..].trim().to_string(),
        });
    }

    // Return type: `-> T` before any `where` clause and the `{`.
    let tail_end = body_start.saturating_sub(1).max(close + 1);
    let tail = &masked[close + 1..tail_end];
    let tail = match find_keyword(tail, "where").first() {
        Some(&w) => &tail[..w],
        None => tail,
    };
    let ret = match tail.find("->") {
        Some(a) => tail[a + 2..].trim().to_string(),
        None => String::new(),
    };
    let ret = match self_ty {
        Some(ty) => replace_keyword(&ret, "Self", ty),
        None => ret,
    };
    (self_kind, params, ret)
}

/// Classifies a first parameter as a `self` receiver, if it is one.
/// Handles `self`, `mut self`, `&self`, `&mut self`, `&'a self`,
/// `&'a mut self`; typed receivers (`self: Box<Self>`) are out of scope.
fn self_param_kind(t: &str) -> Option<SelfKind> {
    if t == "self" || t == "mut self" {
        return Some(SelfKind::Value);
    }
    let rest = t.strip_prefix('&')?.trim_start();
    let rest = if let Some(lt) = rest.strip_prefix('\'') {
        lt.trim_start_matches(|c: char| c.is_alphanumeric() || c == '_')
            .trim_start()
    } else {
        rest
    };
    if rest == "self" {
        Some(SelfKind::Ref)
    } else if rest.strip_prefix("mut").map(str::trim_start) == Some("self") {
        Some(SelfKind::RefMut)
    } else {
        None
    }
}

/// Replaces standalone occurrences of `word` in `text` with `with`.
pub fn replace_keyword(text: &str, word: &str, with: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut last = 0usize;
    for at in find_keyword(text, word) {
        out.push_str(&text[last..at]);
        out.push_str(with);
        last = at + word.len();
    }
    out.push_str(&text[last..]);
    out
}

/// Scans a masked file for `ident(` call shapes. `caller` and `callees`
/// are filled in by [`CallGraph::build`].
fn extract_calls(masked: &str) -> Vec<CallSite> {
    let b = masked.as_bytes();
    let mut out = Vec::new();
    for p in 0..b.len() {
        if b[p] != b'(' {
            continue;
        }
        let mut s = p;
        while s > 0 && is_ident_char(b[s - 1]) {
            s -= 1;
        }
        if s == p || b[s].is_ascii_digit() {
            continue; // `if (`, `!(`, macro `name!(`, tuple `.0(`, …
        }
        let name = &masked[s..p];
        if KEYWORDS.contains(&name) {
            continue;
        }
        let prev = if s > 0 { b[s - 1] } else { 0 };
        let mut qualifier = None;
        let mut is_method = false;
        let mut recv_self = false;
        if prev == b'.' {
            is_method = true;
            let e2 = s - 1;
            let mut s2 = e2;
            while s2 > 0 && is_ident_char(b[s2 - 1]) {
                s2 -= 1;
            }
            if &masked[s2..e2] == "self" && (s2 == 0 || b[s2 - 1] != b'.') {
                recv_self = true;
            }
        } else if prev == b':' && s >= 2 && b[s - 2] == b':' {
            let e2 = s - 2;
            let mut s2 = e2;
            while s2 > 0 && is_ident_char(b[s2 - 1]) {
                s2 -= 1;
            }
            if s2 < e2 {
                qualifier = Some(masked[s2..e2].to_string());
            } else {
                continue; // turbofish `>::`, qualified path `<T as X>::`
            }
        } else if masked[..s].trim_end().ends_with("fn") {
            continue; // a definition, not a call
        }
        let Some(close) = match_paren(masked, p) else {
            continue;
        };
        out.push(CallSite {
            caller: usize::MAX,
            name: name.to_string(),
            qualifier,
            is_method,
            recv_self,
            name_at: s,
            paren: p,
            close,
            callees: Vec::new(),
        });
    }
    out
}

/// Resolves one call site to candidate definitions. See the module docs
/// for the (deliberately conservative) strategy.
fn resolve(fns: &[FnSig], by_name: &BTreeMap<String, Vec<usize>>, call: &CallSite) -> Vec<usize> {
    let Some(all) = by_name.get(&call.name) else {
        return Vec::new();
    };
    let caller = &fns[call.caller];
    let deps = crate_deps(&caller.krate);
    let cands: Vec<usize> = all
        .iter()
        .copied()
        .filter(|&i| match deps {
            Some(d) => d.contains(&fns[i].krate.as_str()),
            None => true,
        })
        .collect();

    if let Some(q) = &call.qualifier {
        if q.starts_with(|c: char| c.is_ascii_uppercase()) {
            // `Type::func(..)` — definitions inside `impl Type`.
            return cands
                .into_iter()
                .filter(|&i| fns[i].self_ty.as_deref() == Some(q.as_str()))
                .collect();
        }
        // `module::func(..)` — free functions in a file named after the
        // module.
        let file_rs = format!("/{q}.rs");
        let file_mod = format!("/{q}/mod.rs");
        let in_module: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| {
                fns[i].self_ty.is_none()
                    && (fns[i].rel.ends_with(&file_rs) || fns[i].rel.ends_with(&file_mod))
            })
            .collect();
        if !in_module.is_empty() {
            return in_module;
        }
        // `crate::f` / `super::f` / `pimdsm_x::f` reach free functions
        // through re-exports; unknown lowercase paths (std modules like
        // `mem::`, `cmp::`) resolve to nothing.
        return if q == "crate" || q == "super" {
            cands
                .into_iter()
                .filter(|&i| fns[i].self_ty.is_none() && fns[i].krate == caller.krate)
                .collect()
        } else if q.starts_with("pimdsm") {
            cands
                .into_iter()
                .filter(|&i| fns[i].self_ty.is_none())
                .collect()
        } else {
            Vec::new()
        };
    }

    if call.is_method {
        let methods: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| fns[i].self_ty.is_some())
            .collect();
        if call.recv_self {
            if let Some(ty) = &caller.self_ty {
                let own: Vec<usize> = methods
                    .iter()
                    .copied()
                    .filter(|&i| fns[i].self_ty.as_deref() == Some(ty.as_str()))
                    .collect();
                if !own.is_empty() {
                    return own;
                }
            }
        }
        return methods;
    }

    // Plain call: free functions only — same file, then same crate, then
    // any dependency crate.
    let free: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&i| fns[i].self_ty.is_none())
        .collect();
    let same_file: Vec<usize> = free
        .iter()
        .copied()
        .filter(|&i| fns[i].file == caller.file)
        .collect();
    if !same_file.is_empty() {
        return same_file;
    }
    let same_crate: Vec<usize> = free
        .iter()
        .copied()
        .filter(|&i| fns[i].krate == caller.krate)
        .collect();
    if !same_crate.is_empty() {
        return same_crate;
    }
    free
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn ws(sources: &[(&str, &str, &str)]) -> Workspace {
        let mut ws = Workspace::empty(std::path::Path::new("/x"));
        for (rel, krate, src) in sources {
            ws.add_source_as(
                PathBuf::from(format!("/x/{rel}")),
                (*rel).to_string(),
                (*src).to_string(),
                krate,
            );
        }
        ws
    }

    fn find<'g>(g: &'g CallGraph, name: &str) -> &'g FnSig {
        &g.fns[g.by_name[name][0]]
    }

    #[test]
    fn signatures_parse_self_params_and_returns() {
        let w = ws(&[(
            "crates/proto/src/a.rs",
            "proto",
            "impl Walk {\n fn go(&mut self, fab: &mut Fabric, n: u32) -> Access { fab.hit(n) }\n fn take(self) -> Self { self }\n}\nfn free(x: u64) -> u64 { x }\n",
        )]);
        let g = CallGraph::build(&w);
        let go = find(&g, "go");
        assert_eq!(go.self_kind, SelfKind::RefMut);
        assert_eq!(go.self_ty.as_deref(), Some("Walk"));
        assert_eq!(go.params.len(), 2);
        assert_eq!(go.params[0].name, "fab");
        assert_eq!(go.params[0].ty, "&mut Fabric");
        assert_eq!(go.ret, "Access");
        let take = find(&g, "take");
        assert_eq!(take.self_kind, SelfKind::Value);
        assert_eq!(take.ret, "Walk", "Self resolved to the impl type");
        let free = find(&g, "free");
        assert_eq!(free.self_kind, SelfKind::None);
        assert!(free.self_ty.is_none());
    }

    #[test]
    fn cross_module_free_calls_resolve_within_crate() {
        let w = ws(&[
            (
                "crates/proto/src/a.rs",
                "proto",
                "pub fn caller() { helper(1); other::helper(2); }\nfn helper(_x: u32) {}\n",
            ),
            (
                "crates/proto/src/other.rs",
                "proto",
                "pub fn helper(_x: u32) {}\n",
            ),
        ]);
        let g = CallGraph::build(&w);
        let caller = g.by_name["caller"][0];
        let sites: Vec<&CallSite> = g.calls_of[caller].iter().map(|&c| &g.calls[c]).collect();
        assert_eq!(sites.len(), 2);
        // Plain call prefers the same file.
        assert_eq!(sites[0].callees.len(), 1);
        assert_eq!(g.fns[sites[0].callees[0]].rel, "crates/proto/src/a.rs");
        // Module-qualified call resolves cross-module.
        assert_eq!(sites[1].callees.len(), 1);
        assert_eq!(g.fns[sites[1].callees[0]].rel, "crates/proto/src/other.rs");
    }

    #[test]
    fn dependency_filter_blocks_non_dep_crates() {
        let w = ws(&[
            (
                "crates/engine/src/a.rs",
                "engine",
                "pub fn tick() { helper(); }\n",
            ),
            ("crates/lab/src/b.rs", "lab", "pub fn helper() {}\n"),
        ]);
        let g = CallGraph::build(&w);
        let tick = g.by_name["tick"][0];
        let site = &g.calls[g.calls_of[tick][0]];
        assert!(
            site.callees.is_empty(),
            "engine does not depend on lab: {site:?}"
        );
    }

    #[test]
    fn method_calls_over_approximate_and_self_calls_stay_local() {
        let w = ws(&[(
            "crates/proto/src/a.rs",
            "proto",
            "impl A { fn run(&mut self) { self.step(); } fn step(&mut self) {} }\n\
             impl B { fn step(&mut self) {} fn kick(&mut self, a: &mut A) { a.step(); } }\n",
        )]);
        let g = CallGraph::build(&w);
        let run = g.by_name["run"][0];
        let self_call = &g.calls[g.calls_of[run][0]];
        assert_eq!(self_call.callees.len(), 1, "self.step() binds to impl A");
        assert_eq!(g.fns[self_call.callees[0]].self_ty.as_deref(), Some("A"));
        // `a.step()` has no receiver type info: trait-object style
        // over-approximation resolves to every visible `step` method.
        let kick = g.by_name["kick"][0];
        let other = &g.calls[g.calls_of[kick][0]];
        assert_eq!(other.callees.len(), 2, "{other:?}");
    }

    #[test]
    fn recursion_and_mutual_recursion_build_cycles() {
        let w = ws(&[(
            "crates/proto/src/a.rs",
            "proto",
            "fn even(n: u64) -> bool { if n == 0 { true } else { odd(n - 1) } }\n\
             fn odd(n: u64) -> bool { if n == 0 { false } else { even(n - 1) } }\n\
             fn down(n: u64) { if n > 0 { down(n - 1) } }\n",
        )]);
        let g = CallGraph::build(&w);
        let down = g.by_name["down"][0];
        assert_eq!(g.callers_of[down], vec![down], "self-recursion edge");
        let even = g.by_name["even"][0];
        let odd = g.by_name["odd"][0];
        assert_eq!(g.callers_of[even], vec![odd]);
        assert_eq!(g.callers_of[odd], vec![even]);
    }

    #[test]
    fn qualified_std_paths_resolve_to_nothing() {
        let w = ws(&[(
            "crates/mem/src/take.rs",
            "mem",
            "pub fn take(_x: u32) {}\npub fn user() { std::mem::take(&mut 3); }\n",
        )]);
        let g = CallGraph::build(&w);
        let user = g.by_name["user"][0];
        let site = &g.calls[g.calls_of[user][0]];
        // `mem::` is a std module here, not `crates/mem`; the module
        // filter requires a file named `mem.rs`, so no candidates.
        assert!(site.callees.is_empty(), "{site:?}");
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let w = ws(&[(
            "crates/proto/src/a.rs",
            "proto",
            "fn f(v: &[u32]) -> u32 { if (v.len()) > 0 { assert!(true); return v[0]; } 0 }\n",
        )]);
        let g = CallGraph::build(&w);
        let f = g.by_name["f"][0];
        let names: Vec<&str> = g.calls_of[f]
            .iter()
            .map(|&c| g.calls[c].name.as_str())
            .collect();
        assert_eq!(names, vec!["len"], "{names:?}");
    }

    #[test]
    fn calls_in_nested_fns_attribute_to_the_inner_fn() {
        let w = ws(&[(
            "crates/proto/src/a.rs",
            "proto",
            "fn outer() { fn inner() { leaf(); } inner(); }\nfn leaf() {}\n",
        )]);
        let g = CallGraph::build(&w);
        let inner = g.by_name["inner"][0];
        let outer = g.by_name["outer"][0];
        let leaf = g.by_name["leaf"][0];
        assert_eq!(g.callers_of[leaf], vec![inner]);
        assert_eq!(g.callers_of[inner], vec![outer]);
    }
}
