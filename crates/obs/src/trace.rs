//! Structured event tracing with a Chrome trace-event JSON backend.
//!
//! The central type is [`Tracer`], a cheaply-cloneable handle that is either
//! *disabled* (the default — a `None` inside, so every emission site costs a
//! single branch and allocates nothing) or *enabled* (shared buffer of
//! [`TraceEvent`]s). The buffer serializes to the Chrome trace-event array
//! format understood by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev).
//!
//! Conventions used throughout the simulator:
//!
//! * `pid` — subsystem track group (0 = protocol, 1 = network, 2 = machine).
//! * `tid` — node id within the group (or link id for the network group).
//! * `ts`  — simulated cycle of the event start.
//! * `dur` — `Some(cycles)` renders a complete span (`"ph":"X"`), `None`
//!   renders an instant (`"ph":"i"`).
//! * `cat` — dot-separated category (`proto.handler`, `am.miss`,
//!   `net.link`, …) used for filtering in the UI and in tests.

use std::cell::RefCell;
use std::rc::Rc;

use pimdsm_engine::Cycle;

/// The canonical registry of trace vocabulary.
///
/// Every `cat` and `name` the simulator passes to [`Tracer::span`] /
/// [`Tracer::instant`] must be listed here — this is where consumers
/// (suite assertions, trace filters, Perfetto queries) look events up, so
/// an unregistered string is an event nothing can find. The
/// `pimdsm-lint` rule **O001** enforces the registry in both directions:
/// an emitted literal missing from the registry and a registered entry no
/// simulation crate emits are both violations.
pub mod registry {
    /// Every event category (`cat` field), sorted.
    pub const CATEGORIES: &[&str] = &[
        "am.hit",
        "am.inject",
        "am.miss",
        "am.pageout",
        "am.swap",
        "machine.barrier",
        "machine.fault",
        "machine.reconfig",
        "machine.recovery",
        "net.link",
        "net.local",
        "net.msg",
        "proto.disk",
        "proto.handler",
        "proto.read",
        "proto.retry",
        "proto.write",
        "svc.offload",
        "svc.request",
    ];

    /// Every event name (`name` field), sorted.
    pub const EVENT_NAMES: &[&str] = &[
        "Ack",
        "Hint",
        "Read",
        "ReadEx",
        "WriteBack",
        "barrier",
        "degrade",
        "deliver",
        "fault",
        "hit",
        "inject",
        "kill",
        "local",
        "miss",
        "offload",
        "pageout",
        "read.remote",
        "reconfig",
        "recovery",
        "rejoin",
        "request",
        "retry",
        "stall",
        "swap",
        "write.remote",
        "xfer",
    ];

    /// Whether `cat` is a registered category.
    pub fn is_known_category(cat: &str) -> bool {
        CATEGORIES.binary_search(&cat).is_ok()
    }

    /// Whether `name` is a registered event name.
    pub fn is_known_event_name(name: &str) -> bool {
        EVENT_NAMES.binary_search(&name).is_ok()
    }
}

/// Track-group ids (`pid` in the Chrome trace) per subsystem.
pub mod track {
    /// Protocol handlers and attraction-memory events (tid = node id).
    pub const PROTO: u32 = 0;
    /// Network links (tid = link id).
    pub const NET: u32 = 1;
    /// Machine-level events: barriers, reconfiguration (tid = 0).
    pub const MACHINE: u32 = 2;
}

/// One trace event in the Chrome trace-event model.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Event name shown in the timeline slice.
    pub name: &'static str,
    /// Dot-separated category, e.g. `proto.handler`, `net.link`.
    pub cat: &'static str,
    /// Track group (subsystem), see [`track`].
    pub pid: u32,
    /// Track within the group (node id / link id).
    pub tid: u32,
    /// Start cycle.
    pub ts: Cycle,
    /// `Some(d)` = complete span of `d` cycles, `None` = instant.
    pub dur: Option<Cycle>,
    /// Small key/value payload rendered into the `args` object.
    pub args: Vec<(&'static str, u64)>,
}

#[derive(Debug, Default)]
struct TraceBuf {
    events: Vec<TraceEvent>,
}

/// Handle for emitting trace events.
///
/// `Tracer::default()` (or [`Tracer::disabled`]) is a no-op handle: emission
/// compiles down to a branch on a `None` option. [`Tracer::enabled`] returns
/// a recording handle; clones share one buffer, so a single enabled tracer
/// can be attached to the network, every protocol node, and the machine.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    buf: Option<Rc<RefCell<TraceBuf>>>,
}

impl Tracer {
    /// A tracer that records nothing and allocates nothing.
    #[inline]
    pub fn disabled() -> Self {
        Tracer { buf: None }
    }

    /// A tracer that records into a fresh shared buffer.
    pub fn enabled() -> Self {
        Tracer {
            buf: Some(Rc::new(RefCell::new(TraceBuf::default()))),
        }
    }

    /// Whether this handle records events. Emission sites may use this to
    /// skip argument construction entirely.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.buf.is_some()
    }

    /// Record a complete span (`ph:"X"`).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &self,
        pid: u32,
        tid: u32,
        name: &'static str,
        cat: &'static str,
        ts: Cycle,
        dur: Cycle,
        args: &[(&'static str, u64)],
    ) {
        if let Some(buf) = &self.buf {
            buf.borrow_mut().events.push(TraceEvent {
                name,
                cat,
                pid,
                tid,
                ts,
                dur: Some(dur),
                args: args.to_vec(),
            });
        }
    }

    /// Record an instant event (`ph:"i"`).
    #[inline]
    pub fn instant(
        &self,
        pid: u32,
        tid: u32,
        name: &'static str,
        cat: &'static str,
        ts: Cycle,
        args: &[(&'static str, u64)],
    ) {
        if let Some(buf) = &self.buf {
            buf.borrow_mut().events.push(TraceEvent {
                name,
                cat,
                pid,
                tid,
                ts,
                dur: None,
                args: args.to_vec(),
            });
        }
    }

    /// Number of recorded events (0 for a disabled tracer).
    pub fn len(&self) -> usize {
        self.buf.as_ref().map_or(0, |b| b.borrow().events.len())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the recorded events, sorted by `(pid, tid, ts)`.
    ///
    /// Sorting makes the output deterministic and guarantees monotone
    /// timestamps *per track* even though a transaction walk may book
    /// resource time out of order.
    pub fn events_sorted(&self) -> Vec<TraceEvent> {
        let mut events = self
            .buf
            .as_ref()
            .map_or_else(Vec::new, |b| b.borrow().events.clone());
        events.sort_by_key(|e| (e.pid, e.tid, e.ts, e.dur.unwrap_or(0)));
        events
    }

    /// Render the buffer as a Chrome trace-event JSON array string.
    ///
    /// The output loads directly in Perfetto / `chrome://tracing`:
    /// a JSON array of objects with `name`, `cat`, `ph`, `ts`, `pid`,
    /// `tid`, optional `dur`, and an `args` object. Simulated cycles map
    /// 1:1 onto microseconds (the unit Chrome assumes for `ts`).
    #[cfg(feature = "json")]
    pub fn to_chrome_json(&self) -> String {
        use crate::json::JsonValue;

        let mut arr: Vec<JsonValue> = Vec::with_capacity(self.len() + 4);
        // Process-name metadata records label each subsystem group.
        for (pid, label) in [
            (track::PROTO, "proto"),
            (track::NET, "net"),
            (track::MACHINE, "machine"),
        ] {
            arr.push(JsonValue::obj([
                ("name", JsonValue::str("process_name")),
                ("ph", JsonValue::str("M")),
                ("pid", JsonValue::u64(pid as u64)),
                ("tid", JsonValue::u64(0)),
                ("args", JsonValue::obj([("name", JsonValue::str(label))])),
            ]));
        }
        for e in self.events_sorted() {
            let mut obj = vec![
                ("name", JsonValue::str(e.name)),
                ("cat", JsonValue::str(e.cat)),
                (
                    "ph",
                    JsonValue::str(if e.dur.is_some() { "X" } else { "i" }),
                ),
                ("pid", JsonValue::u64(e.pid as u64)),
                ("tid", JsonValue::u64(e.tid as u64)),
                ("ts", JsonValue::u64(e.ts)),
            ];
            if let Some(d) = e.dur {
                obj.push(("dur", JsonValue::u64(d)));
            } else {
                // Instant scope: thread.
                obj.push(("s", JsonValue::str("t")));
            }
            obj.push((
                "args",
                JsonValue::Obj(
                    e.args
                        .iter()
                        .map(|(k, v)| (k.to_string(), JsonValue::u64(*v)))
                        .collect(),
                ),
            ));
            arr.push(JsonValue::obj(obj));
        }
        JsonValue::Arr(arr).render()
    }

    /// Write the Chrome trace JSON to `path`.
    #[cfg(feature = "json")]
    pub fn write_chrome_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_lookup_works() {
        for list in [registry::CATEGORIES, registry::EVENT_NAMES] {
            assert!(list.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
        }
        assert!(registry::is_known_category("proto.handler"));
        assert!(!registry::is_known_category("proto.hanlder"));
        assert!(registry::is_known_event_name("read.remote"));
        assert!(!registry::is_known_event_name("nonsense"));
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        t.span(0, 0, "x", "c", 0, 10, &[("a", 1)]);
        t.instant(0, 0, "y", "c", 5, &[]);
        assert_eq!(t.len(), 0);
        assert!(!t.is_enabled());
    }

    #[test]
    fn clones_share_a_buffer_and_sort_by_track_time() {
        let t = Tracer::enabled();
        let t2 = t.clone();
        t.span(0, 1, "b", "c", 50, 5, &[]);
        t2.span(0, 1, "a", "c", 10, 5, &[]);
        t2.span(0, 0, "z", "c", 99, 1, &[]);
        let ev = t.events_sorted();
        assert_eq!(ev.len(), 3);
        assert_eq!((ev[0].tid, ev[0].ts), (0, 99));
        assert_eq!((ev[1].tid, ev[1].ts), (1, 10));
        assert_eq!((ev[2].tid, ev[2].ts), (1, 50));
    }

    #[cfg(feature = "json")]
    #[test]
    fn chrome_json_is_a_valid_array() {
        let t = Tracer::enabled();
        t.span(
            track::PROTO,
            3,
            "read",
            "proto.handler",
            100,
            40,
            &[("page", 7)],
        );
        t.instant(track::PROTO, 3, "am.miss", "am.miss", 100, &[]);
        let doc = crate::json::parse(&t.to_chrome_json()).unwrap();
        let arr = doc.as_arr().unwrap();
        // 3 metadata records + 2 events.
        assert_eq!(arr.len(), 5);
        let span = arr
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("read"))
            .unwrap();
        assert_eq!(span.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(span.get("dur").unwrap().as_u64(), Some(40));
        assert_eq!(
            span.get("args").unwrap().get("page").unwrap().as_u64(),
            Some(7)
        );
    }
}
