//! Epoch-based metrics sampling.
//!
//! The paper's evaluation reasons about *where cycles go over time* —
//! directory-controller occupancy, link contention, attraction-memory
//! behaviour — not just end-of-run totals. [`EpochSampler`] turns cheap
//! system-wide counter snapshots ([`EpochProbe`]) taken every `epoch`
//! cycles into per-epoch time-series ([`EpochSeries`]), differencing
//! cumulative counters so each point is the activity *within* the window.

use pimdsm_engine::{Cycle, RunningStats};

/// Point-in-time snapshot of cumulative system counters.
///
/// All fields are running totals since cycle 0; the sampler differences
/// consecutive probes to get per-epoch activity. Produced by
/// `MemSystem::epoch_probe` implementations.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EpochProbe {
    /// Sum of controller busy cycles across all directory/memory controllers.
    pub ctrl_busy: Cycle,
    /// Number of controllers contributing to `ctrl_busy`.
    pub ctrl_count: usize,
    /// Sum of busy cycles across all network links.
    pub link_busy: Cycle,
    /// Number of network links.
    pub link_count: usize,
    /// Total SharedList entries across D-nodes (instantaneous depth).
    pub shared_list_depth: u64,
    /// Total FreeList slots remaining across D-nodes (instantaneous).
    pub free_slots: u64,
    /// Cumulative reads by satisfaction level (FLC, SLC, Memory, 2Hop, 3Hop).
    pub reads_by_level: [u64; 5],
    /// Cumulative attraction-memory / node-cache misses (3rd level onward).
    pub remote_writes: u64,
    /// Cumulative protocol messages on the network.
    pub net_messages: u64,
}

impl EpochProbe {
    pub fn total_reads(&self) -> u64 {
        self.reads_by_level.iter().sum()
    }
}

/// One recorded time-series: a name plus one point per epoch.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    pub name: String,
    pub points: Vec<f64>,
    /// Summary statistics over the points.
    pub stats: RunningStats,
}

impl Series {
    fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
            stats: RunningStats::new(),
        }
    }

    fn push(&mut self, v: f64) {
        self.points.push(v);
        self.stats.add(v);
    }
}

/// Completed sampling result: epoch boundaries plus the recorded series.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EpochSeries {
    /// Cycle window of each epoch.
    pub epoch_cycles: Cycle,
    /// End-cycle of each sampled epoch (monotone increasing).
    pub ends: Vec<Cycle>,
    pub series: Vec<Series>,
}

impl EpochSeries {
    pub fn series_named(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    pub fn len(&self) -> usize {
        self.ends.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }
}

#[cfg(feature = "json")]
impl crate::json::ToJson for EpochSeries {
    fn to_json(&self) -> crate::json::JsonValue {
        use crate::json::JsonValue;
        JsonValue::obj([
            ("epoch_cycles", JsonValue::u64(self.epoch_cycles)),
            (
                "ends",
                JsonValue::arr(self.ends.iter().map(|&c| JsonValue::u64(c))),
            ),
            (
                "series",
                JsonValue::arr(self.series.iter().map(|s| {
                    JsonValue::obj([
                        ("name", JsonValue::str(s.name.clone())),
                        (
                            "points",
                            JsonValue::arr(s.points.iter().map(|&p| JsonValue::num(p))),
                        ),
                        ("mean", JsonValue::num(s.stats.mean())),
                        ("max", JsonValue::num(s.stats.max())),
                    ])
                })),
            ),
        ])
    }
}

/// Samples [`EpochProbe`]s at a fixed cycle cadence and builds time-series.
///
/// Usage: construct with the epoch length, call [`EpochSampler::due`] from
/// the simulation loop, and when it returns true feed a fresh probe to
/// [`EpochSampler::sample`]. Call [`EpochSampler::finish`] with the final
/// probe and cycle to close the last partial epoch.
#[derive(Clone, Debug)]
pub struct EpochSampler {
    epoch: Cycle,
    next_at: Cycle,
    prev: EpochProbe,
    prev_at: Cycle,
    out: EpochSeries,
}

const SERIES_NAMES: [&str; 8] = [
    "controller_util",
    "link_busy_frac",
    "shared_list_depth",
    "free_slots",
    "reads",
    "read_frac_local",
    "read_frac_remote",
    "net_messages",
];

impl EpochSampler {
    /// `epoch` is clamped to at least 1 cycle.
    pub fn new(epoch: Cycle) -> Self {
        let epoch = epoch.max(1);
        EpochSampler {
            epoch,
            next_at: epoch,
            prev: EpochProbe::default(),
            prev_at: 0,
            out: EpochSeries {
                epoch_cycles: epoch,
                ends: Vec::new(),
                series: SERIES_NAMES.iter().map(|n| Series::new(*n)).collect(),
            },
        }
    }

    /// True when `now` has crossed the next epoch boundary.
    #[inline]
    pub fn due(&self, now: Cycle) -> bool {
        now >= self.next_at
    }

    /// Record the epoch(s) ending at or before `now` from a fresh probe.
    pub fn sample(&mut self, now: Cycle, probe: &EpochProbe) {
        if now < self.next_at {
            return;
        }
        self.record(now, probe);
        // Advance past `now`; event-driven time may leap several epochs.
        while self.next_at <= now {
            self.next_at += self.epoch;
        }
    }

    /// Close the final (possibly partial) epoch and return the series.
    pub fn finish(mut self, now: Cycle, probe: &EpochProbe) -> EpochSeries {
        if now > self.prev_at {
            self.record(now, probe);
        }
        self.out
    }

    fn record(&mut self, now: Cycle, probe: &EpochProbe) {
        let window = (now - self.prev_at).max(1) as f64;
        let d_ctrl = probe.ctrl_busy.saturating_sub(self.prev.ctrl_busy);
        let d_link = probe.link_busy.saturating_sub(self.prev.link_busy);
        let d_reads = probe.total_reads().saturating_sub(self.prev.total_reads());
        let d_msgs = probe.net_messages.saturating_sub(self.prev.net_messages);
        // Local = FLC + SLC + local memory; remote = 2Hop + 3Hop.
        let local_prev: u64 = self.prev.reads_by_level[..3].iter().sum();
        let local_now: u64 = probe.reads_by_level[..3].iter().sum();
        let d_local = local_now.saturating_sub(local_prev);
        let read_denom = d_reads.max(1) as f64;

        let ctrl_denom = window * probe.ctrl_count.max(1) as f64;
        let link_denom = window * probe.link_count.max(1) as f64;
        let values = [
            d_ctrl as f64 / ctrl_denom,
            d_link as f64 / link_denom,
            probe.shared_list_depth as f64,
            probe.free_slots as f64,
            d_reads as f64,
            d_local as f64 / read_denom,
            (d_reads - d_local.min(d_reads)) as f64 / read_denom,
            d_msgs as f64,
        ];
        for (series, v) in self.out.series.iter_mut().zip(values) {
            series.push(v);
        }
        self.out.ends.push(now);
        self.prev = probe.clone();
        self.prev_at = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(ctrl: Cycle, link: Cycle, reads: u64) -> EpochProbe {
        EpochProbe {
            ctrl_busy: ctrl,
            ctrl_count: 2,
            link_busy: link,
            link_count: 4,
            shared_list_depth: 3,
            free_slots: 10,
            reads_by_level: [reads, 0, 0, 0, 0],
            remote_writes: 0,
            net_messages: reads / 2,
        }
    }

    #[test]
    fn differences_cumulative_counters_per_epoch() {
        let mut s = EpochSampler::new(100);
        assert!(!s.due(99));
        assert!(s.due(100));
        s.sample(100, &probe(50, 100, 10));
        s.sample(200, &probe(150, 300, 30));
        let out = s.finish(250, &probe(175, 400, 40));
        assert_eq!(out.ends, vec![100, 200, 250]);
        let util = out.series_named("controller_util").unwrap();
        // Epoch 1: 50 busy / (100 cycles * 2 ctrls) = 0.25
        assert!((util.points[0] - 0.25).abs() < 1e-9);
        // Epoch 2: 100 busy / 200 = 0.5
        assert!((util.points[1] - 0.5).abs() < 1e-9);
        let reads = out.series_named("reads").unwrap();
        assert_eq!(reads.points, vec![10.0, 20.0, 10.0]);
    }

    #[test]
    fn event_time_leaps_do_not_duplicate_epochs() {
        let mut s = EpochSampler::new(10);
        s.sample(35, &probe(5, 5, 5));
        assert!(!s.due(39));
        assert!(s.due(40));
        let out = s.finish(35, &probe(5, 5, 5));
        assert_eq!(out.ends, vec![35]);
    }
}
