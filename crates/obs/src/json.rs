//! Minimal JSON value model, renderer and parser.
//!
//! The build environment has no access to a crates registry, so rather than
//! depending on `serde`/`serde_json` this module hand-rolls the small JSON
//! surface the observability layer needs: construct values, render them
//! compactly or pretty-printed, and parse them back for round-trip tests.
//!
//! Numbers are stored as `f64`. Every quantity the simulator serializes
//! (cycle counts, event counts) is far below 2^53, so the representation is
//! exact for our purposes.

#![cfg(feature = "json")]

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    /// Object with stable (sorted) key order for deterministic output.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, JsonValue)>) -> JsonValue {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    pub fn arr(items: impl IntoIterator<Item = JsonValue>) -> JsonValue {
        JsonValue::Arr(items.into_iter().collect())
    }

    pub fn str(s: impl Into<String>) -> JsonValue {
        JsonValue::Str(s.into())
    }

    pub fn num(n: impl Into<f64>) -> JsonValue {
        JsonValue::Num(n.into())
    }

    /// Lossless for values < 2^53 (all simulator counters in practice).
    pub fn u64(n: u64) -> JsonValue {
        JsonValue::Num(n as f64)
    }

    pub fn usize(n: usize) -> JsonValue {
        JsonValue::Num(n as f64)
    }

    // -- accessors (used by tests and report readers) -----------------------

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|n| n as u64)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    // -- rendering ----------------------------------------------------------

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => write_num(out, *n),
            JsonValue::Str(s) => write_str(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            JsonValue::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Obj(map) if !map.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Types that can serialize themselves into a [`JsonValue`].
///
/// This trait plays the role `serde::Serialize` would if the registry were
/// reachable; implementations live next to the types they serialize.
pub trait ToJson {
    fn to_json(&self) -> JsonValue;
}

impl ToJson for JsonValue {
    fn to_json(&self) -> JsonValue {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Parser (for round-trip tests and report consumers)
// ---------------------------------------------------------------------------

/// Parse a JSON document. Returns a descriptive error on malformed input.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(JsonValue::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    other => {
                        return Err(format!("expected ',' or ']' at byte {pos}, got {other:?}"))
                    }
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                map.insert(key, value);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(map));
                    }
                    other => {
                        return Err(format!("expected ',' or '}}' at byte {pos}, got {other:?}"))
                    }
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        if *pos + 4 >= b.len() {
                            return Err("truncated \\u escape".into());
                        }
                        let hex = std::str::from_utf8(&b[*pos + 1..*pos + 5])
                            .map_err(|_| "bad \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| "invalid utf-8 in string".to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad number".to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = JsonValue::obj([
            ("name", JsonValue::str("fft \"quoted\" \\ path\nnewline")),
            ("count", JsonValue::u64(123_456_789)),
            ("ratio", JsonValue::num(0.5)),
            ("flag", JsonValue::Bool(true)),
            ("none", JsonValue::Null),
            (
                "series",
                JsonValue::arr([JsonValue::u64(1), JsonValue::u64(2), JsonValue::u64(3)]),
            ),
        ]);
        let compact = v.render();
        let pretty = v.render_pretty();
        assert_eq!(parse(&compact).unwrap(), v);
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(JsonValue::u64(42).render(), "42");
        assert_eq!(JsonValue::num(2.5).render(), "2.5");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2,").is_err());
        assert!(parse("[1] extra").is_err());
    }
}
