//! Component labels for per-transaction latency breakdowns.
//!
//! A memory transaction's end-to-end latency decomposes into five
//! components — the machine-checked analogue of the paper's Figure 7
//! stacked bars. The protocol layer attributes every cycle of a
//! transaction walk to exactly one component, so the five entries always
//! sum to the transaction's total latency. The indices below are shared
//! between the protocol crate (which accumulates the breakdown) and the
//! report layer (which serializes it).

/// Cycles spent in the requesting node's private caches: probes, tag
/// checks and line fills.
pub const CACHE: usize = 0;

/// Cycles spent on interconnect transfer (injection, link serialization,
/// hop latency, ejection).
pub const NETWORK: usize = 1;

/// Cycles spent executing protocol handlers (directory-processor or
/// controller latency after dispatch).
pub const HANDLER: usize = 2;

/// Cycles spent waiting on DRAM ports (local or remote memory access),
/// including disk service for paged-out lines.
pub const DRAM: usize = 3;

/// Cycles spent queueing for contended resources: busy links and busy
/// protocol controllers.
pub const QUEUE: usize = 4;

/// Component labels, indexed by the constants above.
pub const COMPONENTS: [&str; 5] = ["cache", "network", "handler", "dram", "queue"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_line_up_with_indices() {
        assert_eq!(COMPONENTS[CACHE], "cache");
        assert_eq!(COMPONENTS[NETWORK], "network");
        assert_eq!(COMPONENTS[HANDLER], "handler");
        assert_eq!(COMPONENTS[DRAM], "dram");
        assert_eq!(COMPONENTS[QUEUE], "queue");
    }
}
