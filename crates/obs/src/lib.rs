//! # pimdsm-obs — simulation observability
//!
//! Cross-cutting observability for the PIM-DSM simulator:
//!
//! * [`trace`] — structured event tracing with a zero-overhead-when-disabled
//!   [`Tracer`] handle and a Chrome trace-event (Perfetto) JSON backend.
//! * [`metrics`] — an epoch-based sampler recording time-series of
//!   controller utilization, link busy fractions, directory list depths and
//!   read-level mix over configurable cycle windows.
//! * [`json`] — a small dependency-free JSON value model, renderer and
//!   parser used for `report.json`, metrics files and trace round-trips.
//! * [`breakdown`] — the shared component labels for per-transaction
//!   latency breakdowns (cache / network / handler / DRAM / queueing).
//!
//! The tracer is designed so that a *disabled* tracer costs a single
//! `Option` branch per emission site and allocates nothing; hot paths pay
//! essentially zero when observability is off (the default).

pub mod breakdown;
pub mod json;
pub mod metrics;
pub mod trace;

#[cfg(feature = "json")]
pub use json::{JsonValue, ToJson};
pub use metrics::{EpochProbe, EpochSampler, EpochSeries};
pub use trace::{TraceEvent, Tracer};
