//! Minimal, dependency-free property-testing shim.
//!
//! This crate implements exactly the slice of the `proptest` API that the
//! workspace's tests use, so the repository builds and tests in a fully
//! offline environment. Strategies are plain pseudo-random generators
//! (no shrinking); failures report the generated inputs so cases can be
//! reproduced by hand.

use std::fmt::Debug;
use std::ops::Range;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic splitmix64 generator used to drive all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Errors and assertion macros
// ---------------------------------------------------------------------------

/// Error carried out of a failing property body.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The case should be discarded (unused here, kept for API parity).
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "property failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
        }
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}: {}",
                l,
                r,
                format!($($fmt)*)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                l, r
            )));
        }
    }};
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

/// Runner configuration; only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A value generator. Unlike real proptest there is no shrinking; a
/// strategy is just a function from RNG state to a value.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn ErasedStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
        }
    }
}

trait ErasedStrategy<T> {
    fn erased_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn erased_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.erased_generate(rng)
    }
}

/// `.prop_map` combinator output.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// --- integer / float range strategies --------------------------------------

macro_rules! impl_int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let lo = self.start as u64;
                let hi = self.end as u64;
                if hi <= lo {
                    return self.start;
                }
                (lo + rng.below(hi - lo)) as $ty
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let lo = *self.start() as u64;
                let hi = *self.end() as u64;
                if hi <= lo {
                    return *self.start();
                }
                let span = (hi - lo).saturating_add(1);
                (lo + rng.below(span)) as $ty
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        if self.end <= self.start {
            return self.start;
        }
        self.start + rng.f64_unit() * (self.end - self.start)
    }
}

// --- tuple strategies -------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

// --- any::<T>() -------------------------------------------------------------

/// Marker produced by [`any`].
#[derive(Clone, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_uint {
    ($($ty:ty),*) => {$(
        impl Strategy for Any<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_any_uint!(u8, u16, u32, u64, usize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.f64_unit() * 2.0 - 1.0
    }
}

// --- union (prop_oneof!) ----------------------------------------------------

/// Uniform choice among boxed strategies of one value type.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

pub fn union_of<T: Debug>(options: Vec<BoxedStrategy<T>>) -> Union<T> {
    assert!(!options.is_empty(), "union_of needs at least one option");
    Union { options }
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::union_of(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

// --- collections ------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let lo = self.len.start as u64;
            let hi = self.len.end.max(self.len.start + 1) as u64;
            let n = (lo + rng.below(hi - lo)) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;

    /// Strategy that picks uniformly from a fixed set of values.
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone + Debug>(Vec<T>);

    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select(options)
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].clone()
        }
    }
}

// ---------------------------------------------------------------------------
// The proptest! macro
// ---------------------------------------------------------------------------

/// Entry point macro: declares `#[test]` functions that run their body over
/// `cases` generated inputs. No shrinking; the failing input is printed.
#[macro_export]
macro_rules! proptest {
    // No tests left.
    (@cfg ($config:expr)) => {};
    // One test fn, then recurse. The `#[test]` attribute written in the
    // source is captured by the meta repetition and re-emitted verbatim.
    (@cfg ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($p:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            // One deterministic seed per test name, varied per case.
            let mut seed: u64 = 0xcafe_f00d;
            for b in stringify!($name).bytes() {
                seed = seed.wrapping_mul(31).wrapping_add(b as u64);
            }
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::new(
                    seed ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                );
                let generated = ( $( $crate::Strategy::generate(&$strat, &mut rng), )+ );
                let shown = format!("{:?}", generated);
                let result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        #[allow(unused_parens, unused_mut)]
                        let ( $($p,)+ ) = generated;
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                if let Err(e) = result {
                    panic!(
                        "proptest case {}/{} failed for input {}:\n  {}",
                        case + 1,
                        config.cases,
                        shown,
                        e
                    );
                }
            }
        }
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    // With a leading config.
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    // Without a config: use the default.
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

// ---------------------------------------------------------------------------
// Prelude
// ---------------------------------------------------------------------------

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, union_of, Any,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRng,
    };
}

#[cfg(test)]
mod self_tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in 0usize..4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for x in v {
                prop_assert!(x < 5);
            }
        }

        #[test]
        fn oneof_and_select(
            a in prop_oneof![Just(1u8), Just(2u8)],
            b in crate::sample::select(vec!["x", "y"])
        ) {
            prop_assert!(a == 1 || a == 2);
            prop_assert!(b == "x" || b == "y");
        }
    }
}
