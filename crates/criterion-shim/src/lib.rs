//! Minimal, dependency-free benchmarking shim.
//!
//! Implements the slice of the `criterion` API used by this workspace's
//! `benches/` so they compile and run offline. Measurement is a simple
//! best-of-N wall-clock loop with automatic iteration scaling — good
//! enough for relative before/after comparisons on one machine.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration driver handed to the closure in `bench_function`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark harness.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

fn run_bench(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up / calibration: find an iteration count taking ~5ms.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(4).max(iters + 1);
    }
    // Measurement: best of `sample_size` runs.
    let mut best = Duration::MAX;
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed < best {
            best = b.elapsed;
        }
    }
    let per_iter = best.as_nanos() as f64 / iters as f64;
    let (value, unit) = if per_iter >= 1e9 {
        (per_iter / 1e9, "s")
    } else if per_iter >= 1e6 {
        (per_iter / 1e6, "ms")
    } else if per_iter >= 1e3 {
        (per_iter / 1e3, "us")
    } else {
        (per_iter, "ns")
    };
    println!("{label:<40} time: {value:>10.3} {unit}/iter  ({iters} iters/sample)");
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_bench(&id.into(), self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// Named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_bench(&label, self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
