//! The seven applications of the paper's evaluation (Table 3).

pub mod barnes;
pub mod dbase;
pub mod fft;
pub mod radix;
pub mod stencil;

pub use barnes::Barnes;
pub use dbase::Dbase;
pub use fft::Fft;
pub use radix::Radix;
pub use stencil::{Stencil, StencilCfg};
