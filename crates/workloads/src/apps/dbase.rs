//! Dbase: TPC-D query 3 on a stand-alone table system, hand-parallelized
//! (Table 3).
//!
//! Two phases with very different resource demands (Section 4.2):
//!
//! - **Hash phase**: every thread streams chunks of a large table with *no
//!   reuse*, testing each record against the select condition and
//!   inserting the qualifying ones into a shared hash table under locks.
//!   Misses continuously in the D-nodes and synchronizes often — D-node
//!   intensive.
//! - **Join phase**: the second table is divided into chunks handed to
//!   threads; once a chunk is in the caches it gets reused while its
//!   records probe the hash table. Benefits from many P-nodes.
//!
//! The phases may run with different thread counts (dynamic
//! reconfiguration, Figure 10-(a)), and both phases' table traversals can
//! be offloaded to D-node processors (computation-in-memory,
//! Figure 10-(b)) via [`Op::OffloadScan`].

use pimdsm_engine::SimRng;

use crate::layout::{Layout, Region};
use crate::ops::{partition, Batch, ChunkGen, Op, PreloadKind, PreloadRegion, ThreadGen, Workload};

/// Barrier id marking the hash → join transition (the dynamic
/// reconfiguration point).
pub const PHASE_BARRIER: u32 = 0;
/// Barrier id ending the join phase.
pub const FINAL_BARRIER: u32 = 1;

/// The Dbase (TPC-D Q3) workload model.
#[derive(Debug, Clone)]
pub struct Dbase {
    hash_threads: usize,
    join_threads: usize,
    offload: bool,
    scan_table: Region,
    join_table: Region,
    hash: Region,
    results: Vec<Region>,
    record_bytes: u64,
    chunk_bytes: u64,
    selectivity: f64,
    footprint: u64,
    seed: u64,
}

impl Dbase {
    /// Builds the query model.
    ///
    /// `hash_threads` run the hash phase, `join_threads` the join phase
    /// (equal for static machines). `table_bytes` sizes each of the two
    /// tables; `offload` enables the computation-in-memory variant.
    ///
    /// # Panics
    ///
    /// Panics if either thread count is zero or the tables are too small.
    pub fn new(hash_threads: usize, join_threads: usize, table_bytes: u64, offload: bool) -> Self {
        assert!(hash_threads > 0 && join_threads > 0);
        let threads = hash_threads.max(join_threads);
        let chunk_bytes = 16 * 1024;
        assert!(
            table_bytes >= threads as u64 * chunk_bytes,
            "tables too small for {threads} threads"
        );
        let mut l = Layout::new(12);
        let scan_table = l.alloc(table_bytes);
        let join_table = l.alloc(table_bytes);
        let hash = l.alloc((table_bytes / 16).max(64 * 1024));
        let results = l.alloc_per_thread(threads, table_bytes / threads as u64 / 8);
        Dbase {
            hash_threads,
            join_threads,
            offload,
            scan_table,
            join_table,
            hash,
            results,
            record_bytes: 128,
            chunk_bytes,
            selectivity: 0.05,
            footprint: l.footprint(),
            seed: 0xD8A5E,
        }
    }

    fn records_per_chunk(&self) -> u64 {
        self.chunk_bytes / self.record_bytes
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Hash,
    Join,
    Done,
}

impl Workload for Dbase {
    fn name(&self) -> &'static str {
        "Dbase"
    }

    fn threads(&self) -> usize {
        self.hash_threads.max(self.join_threads)
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn l1_kb(&self) -> u64 {
        64
    }

    fn l2_kb(&self) -> u64 {
        512
    }

    fn reconfig_barrier(&self) -> Option<u32> {
        if self.hash_threads != self.join_threads {
            Some(PHASE_BARRIER)
        } else {
            None
        }
    }

    fn barrier_width(&self, id: u32) -> usize {
        match id {
            PHASE_BARRIER => self.hash_threads,
            _ => self.join_threads,
        }
    }

    fn delayed_start(&self, tid: usize) -> bool {
        tid >= self.hash_threads
    }

    /// The database loader populated both tables from one node before the
    /// query starts, so under first-touch every table page homes at
    /// thread 0's node.
    fn preload_regions(&self) -> Vec<PreloadRegion> {
        vec![
            PreloadRegion {
                base: self.scan_table.base(),
                bytes: self.scan_table.bytes(),
                owner_tid: 0,
                kind: PreloadKind::SharedInit,
            },
            PreloadRegion {
                base: self.join_table.base(),
                bytes: self.join_table.bytes(),
                owner_tid: 0,
                kind: PreloadKind::SharedInit,
            },
        ]
    }

    fn spawn(&self, tid: usize) -> Box<dyn ThreadGen> {
        assert!(tid < self.threads());
        let app = self.clone();
        let mut rng = SimRng::new(app.seed ^ (tid as u64 + 7).wrapping_mul(0xABCD));
        let in_hash = tid < app.hash_threads;
        let in_join = tid < app.join_threads;
        let n_chunks = app.scan_table.bytes() / app.chunk_bytes;
        let (h0, hn) = partition(n_chunks, app.hash_threads, tid.min(app.hash_threads - 1));
        let (j0, jn) = partition(n_chunks, app.join_threads, tid.min(app.join_threads - 1));
        let mut phase = if in_hash { Phase::Hash } else { Phase::Join };
        let mut chunk = 0u64;
        let mut result_pos = 0u64;
        let mut emitted_phase_barrier = false;

        Box::new(ChunkGen::new(move |out: &mut Vec<Op>| {
            let records = app.records_per_chunk();
            let matches = ((records as f64 * app.selectivity).ceil() as u64).max(1);
            match phase {
                Phase::Hash => {
                    if !in_hash || chunk >= hn {
                        if in_hash && !emitted_phase_barrier {
                            emitted_phase_barrier = true;
                            out.push(Op::Barrier(PHASE_BARRIER));
                        }
                        phase = Phase::Join;
                        chunk = 0;
                        return true;
                    }
                    let base = app.scan_table.at((h0 + chunk) * app.chunk_bytes);
                    if app.offload {
                        out.push(Op::OffloadScan {
                            chunk_addr: base,
                            bytes: app.chunk_bytes,
                            scan_cycles: records * 3,
                            reply_bytes: (matches * 8) as u32,
                        });
                    } else {
                        out.push(Op::LoadBatch {
                            base,
                            stride: 64,
                            count: (app.chunk_bytes / 64) as u32,
                        });
                        out.push(Op::Compute(records * 4));
                    }
                    // Insert qualifying records into the shared hash table.
                    for _ in 0..matches {
                        let bucket = rng.range(0, app.hash.bytes() / 64) * 64;
                        let lock = (bucket / 64 % 1024) as u32;
                        out.push(Op::Lock(lock));
                        out.push(Op::Load(app.hash.at(bucket)));
                        out.push(Op::Compute(10));
                        out.push(Op::Store(app.hash.at(bucket)));
                        out.push(Op::Unlock(lock));
                    }
                    chunk += 1;
                }
                Phase::Join => {
                    if !in_join || chunk >= jn {
                        if in_join {
                            out.push(Op::Barrier(FINAL_BARRIER));
                        }
                        phase = Phase::Done;
                        return true;
                    }
                    let base = app.join_table.at((j0 + chunk) * app.chunk_bytes);
                    if app.offload {
                        out.push(Op::OffloadScan {
                            chunk_addr: base,
                            bytes: app.chunk_bytes,
                            scan_cycles: records * 3,
                            reply_bytes: (matches * 8) as u32,
                        });
                        // Fetch just the matching records.
                        let mut addrs = [0u64; 16];
                        let mut na = 0;
                        for _ in 0..matches {
                            let r = rng.range(0, records);
                            addrs[na] = base + r * app.record_bytes;
                            na += 1;
                            if na == 16 {
                                out.push(Op::Gather(Batch::new(&addrs)));
                                na = 0;
                            }
                        }
                        if na > 0 {
                            out.push(Op::Gather(Batch::new(&addrs[..na])));
                        }
                    } else {
                        out.push(Op::LoadBatch {
                            base,
                            stride: 64,
                            count: (app.chunk_bytes / 64) as u32,
                        });
                        out.push(Op::Compute(records * 45));
                        // Chunk reuse: a second pass over part of the chunk
                        // hits in the caches.
                        out.push(Op::LoadBatch {
                            base,
                            stride: 64,
                            count: (app.chunk_bytes / 64 / 2).max(1) as u32,
                        });
                        out.push(Op::Compute(records * 25));
                    }
                    // Probe the hash table for each qualifying record and
                    // append to the local result buffer.
                    for _ in 0..matches {
                        let bucket = rng.range(0, app.hash.bytes() / 64) * 64;
                        out.push(Op::Gather(Batch::new(&[
                            app.hash.at(bucket),
                            app.hash.at((bucket + 64) % app.hash.bytes()),
                        ])));
                        out.push(Op::Compute(400));
                        let res = &app.results[tid];
                        out.push(Op::Store(res.at(result_pos % res.bytes())));
                        result_pos += 64;
                    }
                    chunk += 1;
                }
                Phase::Done => return false,
            }
            true
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &Dbase, tid: usize) -> Vec<Op> {
        let mut g = w.spawn(tid);
        let mut v = Vec::new();
        while let Some(op) = g.next_op() {
            v.push(op);
            assert!(v.len() < 3_000_000);
        }
        v
    }

    #[test]
    fn static_run_has_both_barriers_everywhere() {
        let w = Dbase::new(4, 4, 1 << 20, false);
        for t in 0..4 {
            let ids: Vec<u32> = drain(&w, t)
                .into_iter()
                .filter_map(|o| match o {
                    Op::Barrier(id) => Some(id),
                    _ => None,
                })
                .collect();
            assert_eq!(ids, vec![PHASE_BARRIER, FINAL_BARRIER]);
        }
        assert_eq!(w.reconfig_barrier(), None);
    }

    #[test]
    fn grow_reconfig_threads_skip_hash_phase() {
        let w = Dbase::new(2, 4, 1 << 20, false);
        assert_eq!(w.threads(), 4);
        assert_eq!(w.reconfig_barrier(), Some(PHASE_BARRIER));
        assert_eq!(w.barrier_width(PHASE_BARRIER), 2);
        assert_eq!(w.barrier_width(FINAL_BARRIER), 4);
        assert!(!w.delayed_start(1));
        assert!(w.delayed_start(2));
        let ops = drain(&w, 3);
        let ids: Vec<u32> = ops
            .iter()
            .filter_map(|o| match o {
                Op::Barrier(id) => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(ids, vec![FINAL_BARRIER], "late thread: join phase only");
        assert!(
            !ops.iter().any(|o| matches!(o, Op::OffloadScan { .. })),
            "plain mode never offloads"
        );
    }

    #[test]
    fn offload_replaces_streaming_loads() {
        let plain = Dbase::new(2, 2, 1 << 20, false);
        let opt = Dbase::new(2, 2, 1 << 20, true);
        let p_ops = drain(&plain, 0);
        let o_ops = drain(&opt, 0);
        let p_loads: u64 = p_ops
            .iter()
            .map(|o| match o {
                Op::LoadBatch { count, .. } => *count as u64,
                _ => 0,
            })
            .sum();
        let o_loads: u64 = o_ops
            .iter()
            .map(|o| match o {
                Op::LoadBatch { count, .. } => *count as u64,
                Op::Gather(b) => b.len() as u64,
                _ => 0,
            })
            .sum();
        assert!(
            o_loads * 4 < p_loads,
            "offload should slash P-side loads ({o_loads} vs {p_loads})"
        );
        assert!(o_ops.iter().any(|o| matches!(o, Op::OffloadScan { .. })));
    }

    #[test]
    fn hash_phase_uses_locks() {
        let w = Dbase::new(2, 2, 1 << 20, false);
        let ops = drain(&w, 0);
        let locks = ops.iter().filter(|o| matches!(o, Op::Lock(_))).count();
        assert!(locks > 10, "hash inserts synchronize often");
    }

    #[test]
    fn shrink_reconfig_late_threads_finish_early() {
        let w = Dbase::new(4, 2, 1 << 20, false);
        assert_eq!(w.threads(), 4);
        let ops = drain(&w, 3);
        let ids: Vec<u32> = ops
            .iter()
            .filter_map(|o| match o {
                Op::Barrier(id) => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(ids, vec![PHASE_BARRIER], "thread 3 exits after hash");
    }

    #[test]
    fn deterministic() {
        let w = Dbase::new(2, 2, 1 << 20, true);
        assert_eq!(drain(&w, 1), drain(&w, 1));
    }
}
