//! Barnes (SPLASH-2): Barnes-Hut N-body, 16K bodies.
//!
//! Each step alternates a *tree build* phase — lock-protected scattered
//! writes into the shared octree — and a *force computation* phase where
//! every thread gathers tree cells with a strongly skewed (Zipf) reuse
//! pattern: cells near the root are read by everyone, leaves rarely. The
//! skew gives large read-sharing working sets that reward big caching
//! space.

use pimdsm_engine::{SimRng, Zipf};

use crate::layout::{Layout, Region};
use crate::ops::{partition, Batch, ChunkGen, Op, PreloadKind, PreloadRegion, ThreadGen, Workload};

/// The Barnes workload model.
#[derive(Debug, Clone)]
pub struct Barnes {
    threads: usize,
    bodies: u64,
    body_bytes: u64,
    steps: u32,
    tree_cells: u64,
    cell_bytes: u64,
    bodies_region: Region,
    tree: Region,
    footprint: u64,
    zipf: Zipf,
    seed: u64,
}

impl Barnes {
    /// Builds an N-body run over `bodies` bodies and `steps` time steps.
    ///
    /// # Panics
    ///
    /// Panics if there are too few bodies per thread.
    pub fn new(threads: usize, bodies: u64, steps: u32) -> Self {
        assert!(threads > 0);
        assert!(bodies >= threads as u64 * 32, "too few bodies per thread");
        let body_bytes = 128;
        let tree_cells = (bodies / 2).max(256);
        let cell_bytes = 64;
        let mut l = Layout::new(12);
        let bodies_region = l.alloc(bodies * body_bytes);
        let tree = l.alloc(tree_cells * cell_bytes);
        Barnes {
            threads,
            bodies,
            body_bytes,
            steps,
            tree_cells,
            cell_bytes,
            bodies_region,
            tree,
            footprint: l.footprint(),
            zipf: Zipf::new(tree_cells as usize, 1.1),
            seed: 0xBA41E5,
        }
    }
}

impl Barnes {
    /// Number of cells in the shared tree region.
    pub fn tree_cells(&self) -> u64 {
        self.tree_cells
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Build,
    Force,
}

impl Workload for Barnes {
    fn name(&self) -> &'static str {
        "Barnes"
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn l1_kb(&self) -> u64 {
        8
    }

    fn l2_kb(&self) -> u64 {
        32
    }

    /// Bodies and the initial tree are built by the main thread before
    /// the time steps begin (SPLASH-2 Barnes), homing their pages at
    /// thread 0's node under first-touch.
    fn preload_regions(&self) -> Vec<PreloadRegion> {
        vec![
            PreloadRegion {
                base: self.bodies_region.base(),
                bytes: self.bodies_region.bytes(),
                owner_tid: 0,
                kind: PreloadKind::SharedInit,
            },
            PreloadRegion {
                base: self.tree.base(),
                bytes: self.tree.bytes(),
                owner_tid: 0,
                kind: PreloadKind::SharedInit,
            },
        ]
    }

    fn spawn(&self, tid: usize) -> Box<dyn ThreadGen> {
        assert!(tid < self.threads);
        let app = self.clone();
        let (b0, blen) = partition(app.bodies, app.threads, tid);
        let chunk = 32u64.min(blen);
        let mut rng = SimRng::new(app.seed ^ (tid as u64 + 1).wrapping_mul(0x9E37));
        let mut step = 0u32;
        let mut phase = Phase::Build;
        let mut pos = 0u64;
        let mut barrier = 0u32;

        Box::new(ChunkGen::new(move |out: &mut Vec<Op>| {
            if step >= app.steps {
                return false;
            }
            let n = chunk.min(blen - pos);
            let my_bodies = app.bodies_region.base() + (b0 + pos) * app.body_bytes;
            match phase {
                Phase::Build => {
                    // Read own bodies, insert into the shared tree:
                    // lock-protected writes to Zipf-distributed cells.
                    out.push(Op::LoadBatch {
                        base: my_bodies,
                        stride: app.body_bytes as u32,
                        count: n as u32,
                    });
                    out.push(Op::Compute(40 * n));
                    let mut addrs = [0u64; 16];
                    let na = n.min(16) as usize;
                    for a in &mut addrs[..na] {
                        let cell = app.zipf.sample(&mut rng) as u64;
                        *a = app.tree.at(cell * app.cell_bytes);
                    }
                    let lock = (rng.range(0, 64)) as u32;
                    out.push(Op::Lock(lock));
                    out.push(Op::Scatter(Batch::new(&addrs[..na])));
                    out.push(Op::Unlock(lock));
                }
                Phase::Force => {
                    // For each own body gather ~12 tree cells (Zipf) and
                    // compute the interaction, then update the body.
                    out.push(Op::LoadBatch {
                        base: my_bodies,
                        stride: app.body_bytes as u32,
                        count: n as u32,
                    });
                    for _ in 0..n {
                        let mut addrs = [0u64; 12];
                        for a in &mut addrs {
                            let cell = app.zipf.sample(&mut rng) as u64;
                            *a = app.tree.at(cell * app.cell_bytes);
                        }
                        out.push(Op::Gather(Batch::new(&addrs)));
                        out.push(Op::Compute(120));
                    }
                    out.push(Op::StoreBatch {
                        base: my_bodies,
                        stride: app.body_bytes as u32,
                        count: n as u32,
                    });
                }
            }
            pos += n;
            if pos >= blen {
                pos = 0;
                out.push(Op::Barrier(barrier));
                barrier += 1;
                phase = match phase {
                    Phase::Build => Phase::Force,
                    Phase::Force => {
                        step += 1;
                        Phase::Build
                    }
                };
            }
            true
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &Barnes, tid: usize) -> Vec<Op> {
        let mut g = w.spawn(tid);
        let mut v = Vec::new();
        while let Some(op) = g.next_op() {
            v.push(op);
            assert!(v.len() < 2_000_000);
        }
        v
    }

    #[test]
    fn two_barriers_per_step() {
        let w = Barnes::new(4, 1024, 3);
        let n = drain(&w, 2)
            .iter()
            .filter(|o| matches!(o, Op::Barrier(_)))
            .count();
        assert_eq!(n, 6);
    }

    #[test]
    fn tree_reads_are_skewed() {
        let w = Barnes::new(2, 512, 1);
        let ops = drain(&w, 0);
        let mut counts = std::collections::BTreeMap::new();
        for op in &ops {
            if let Op::Gather(b) = op {
                for &a in b.addrs() {
                    *counts.entry(a).or_insert(0u32) += 1;
                }
            }
        }
        assert!(!counts.is_empty());
        let max = counts.values().max().copied().unwrap();
        let mean = counts.values().sum::<u32>() as f64 / counts.len() as f64;
        assert!(
            max as f64 > mean * 3.0,
            "expected skew: max {max} vs mean {mean:.1}"
        );
    }

    #[test]
    fn gathers_stay_in_tree_region() {
        let w = Barnes::new(2, 512, 1);
        for op in drain(&w, 1) {
            if let Op::Gather(b) = op {
                for &a in b.addrs() {
                    assert!(a >= w.tree.base() && a < w.tree.base() + w.tree.bytes());
                }
            }
        }
    }

    #[test]
    fn per_thread_streams_differ_but_are_deterministic() {
        let w = Barnes::new(2, 512, 1);
        assert_eq!(drain(&w, 0), drain(&w, 0));
        assert_ne!(drain(&w, 0), drain(&w, 1));
    }
}
