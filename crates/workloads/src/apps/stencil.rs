//! Generic row-partitioned iterative stencil, modeling Ocean (SPLASH-2),
//! Swim and Tomcatv (SPEC95, SUIF-parallelized).
//!
//! All three codes sweep 2D grids partitioned by blocks of rows: each
//! iteration reads a thread's own rows plus the boundary rows of its
//! neighbours (nearest-neighbour sharing), computes, writes its own rows,
//! and barriers. They differ in grid size, number of arrays, compute
//! density, and whether a global reduction (Tomcatv's error norm)
//! serializes on a lock each iteration.

use crate::layout::{Layout, Region};
use crate::ops::{partition, ChunkGen, Op, PreloadKind, PreloadRegion, ThreadGen, Workload};

/// Parameters of a stencil application.
#[derive(Debug, Clone, Copy)]
pub struct StencilCfg {
    /// Application name.
    pub name: &'static str,
    /// Grid rows.
    pub rows: u64,
    /// Bytes per row per array.
    pub row_bytes: u64,
    /// Number of grid arrays swept per iteration.
    pub arrays: usize,
    /// Outer iterations.
    pub iters: u32,
    /// Compute cycles per row per array.
    pub compute_per_row: u64,
    /// Whether each iteration ends with a lock-protected global reduction.
    pub reduction: bool,
    /// How many of the arrays one thread initialized before the measured
    /// region (0 = fully parallel init). SUIF-parallelized SPEC95 codes
    /// keep their serial initialization loops (all arrays); SPLASH-2
    /// Ocean initializes its read-mostly coefficient grids in the master
    /// thread. Serially-initialized pages first-touch — and in CC-NUMA,
    /// home — at thread 0's node.
    pub serial_init_arrays: usize,
    /// L1 KiB (Table 3).
    pub l1_kb: u64,
    /// L2 KiB (Table 3).
    pub l2_kb: u64,
}

/// A built stencil workload.
#[derive(Debug, Clone)]
pub struct Stencil {
    cfg: StencilCfg,
    threads: usize,
    arrays: Vec<Region>,
    reduction_cell: u64,
    footprint: u64,
}

impl Stencil {
    /// Lays out the grid arrays and builds the workload.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or exceeds the number of rows.
    pub fn new(cfg: StencilCfg, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        assert!(
            threads as u64 <= cfg.rows,
            "more threads ({threads}) than rows ({})",
            cfg.rows
        );
        let mut l = Layout::new(12);
        let arrays: Vec<Region> = (0..cfg.arrays)
            .map(|_| l.alloc(cfg.rows * cfg.row_bytes))
            .collect();
        let red = l.alloc(64);
        Stencil {
            cfg,
            threads,
            arrays,
            reduction_cell: red.base(),
            footprint: l.footprint(),
        }
    }

    fn row_addr(&self, array: usize, row: u64) -> u64 {
        self.arrays[array].at(row * self.cfg.row_bytes)
    }
}

impl Workload for Stencil {
    fn name(&self) -> &'static str {
        self.cfg.name
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn l1_kb(&self) -> u64 {
        self.cfg.l1_kb
    }

    fn l2_kb(&self) -> u64 {
        self.cfg.l2_kb
    }

    fn preload_regions(&self) -> Vec<PreloadRegion> {
        self.arrays
            .iter()
            .rev()
            .take(self.cfg.serial_init_arrays)
            .map(|r| PreloadRegion {
                base: r.base(),
                bytes: r.bytes(),
                owner_tid: 0,
                kind: PreloadKind::SharedInit,
            })
            .collect()
    }

    fn spawn(&self, tid: usize) -> Box<dyn ThreadGen> {
        assert!(tid < self.threads, "thread {tid} out of range");
        let app = self.clone();
        let (row0, nrows) = partition(app.cfg.rows, app.threads, tid);
        let lines_per_row = (app.cfg.row_bytes / 64).max(1) as u32;
        let mut iter = 0u32;
        let mut row = 0u64;
        let mut barrier_id = 0u32;
        Box::new(ChunkGen::new(move |out: &mut Vec<Op>| {
            if iter >= app.cfg.iters {
                return false;
            }
            let r = row0 + row;
            // Read own row of every array, plus neighbour boundary rows.
            for a in 0..app.cfg.arrays {
                out.push(Op::LoadBatch {
                    base: app.row_addr(a, r),
                    stride: 64,
                    count: lines_per_row,
                });
            }
            if row == 0 && r > 0 {
                out.push(Op::LoadBatch {
                    base: app.row_addr(0, r - 1),
                    stride: 64,
                    count: lines_per_row,
                });
            }
            if row == nrows - 1 && r + 1 < app.cfg.rows {
                out.push(Op::LoadBatch {
                    base: app.row_addr(0, r + 1),
                    stride: 64,
                    count: lines_per_row,
                });
            }
            out.push(Op::Compute(app.cfg.compute_per_row * app.cfg.arrays as u64));
            // Write own row of the first half of the arrays (outputs).
            for a in 0..(app.cfg.arrays / 2).max(1) {
                out.push(Op::StoreBatch {
                    base: app.row_addr(a, r),
                    stride: 64,
                    count: lines_per_row,
                });
            }

            row += 1;
            if row == nrows {
                row = 0;
                if app.cfg.reduction {
                    out.push(Op::Lock(0));
                    out.push(Op::Load(app.reduction_cell));
                    out.push(Op::Compute(20));
                    out.push(Op::Store(app.reduction_cell));
                    out.push(Op::Unlock(0));
                }
                out.push(Op::Barrier(barrier_id));
                barrier_id += 1;
                iter += 1;
            }
            true
        }))
    }
}

/// Ocean: 256×256 current simulation (Table 3), ~5 working arrays.
pub fn ocean(threads: usize, size_div: u64, iter_div: u64) -> Stencil {
    let rows = (256 / size_div.max(1)).max(threads as u64 * 2);
    Stencil::new(
        StencilCfg {
            name: "Ocean",
            rows,
            row_bytes: 256 * 8,
            arrays: 5,
            iters: (40 / iter_div.max(1)).max(2) as u32,
            compute_per_row: 60,
            reduction: false,
            serial_init_arrays: 2,
            l1_kb: 8,
            l2_kb: 32,
        },
        threads,
    )
}

/// Swim: 512×512 weather prediction, many arrays, SUIF-parallelized.
pub fn swim(threads: usize, size_div: u64, iter_div: u64) -> Stencil {
    let rows = (512 / size_div.max(1)).max(threads as u64 * 2);
    Stencil::new(
        StencilCfg {
            name: "Swim",
            rows,
            row_bytes: 512 * 8,
            arrays: 8,
            iters: (15 / iter_div.max(1)).max(2) as u32,
            compute_per_row: 90,
            reduction: false,
            serial_init_arrays: 8,
            l1_kb: 32,
            l2_kb: 128,
        },
        threads,
    )
}

/// Tomcatv: 513×513 mesh generation with a per-iteration error reduction.
pub fn tomcatv(threads: usize, size_div: u64, iter_div: u64) -> Stencil {
    let rows = (512 / size_div.max(1)).max(threads as u64 * 2);
    Stencil::new(
        StencilCfg {
            name: "Tomcat",
            rows,
            row_bytes: 512 * 8,
            arrays: 7,
            iters: (12 / iter_div.max(1)).max(2) as u32,
            compute_per_row: 140,
            reduction: true,
            serial_init_arrays: 7,
            l1_kb: 64,
            l2_kb: 256,
        },
        threads,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &dyn Workload, tid: usize) -> Vec<Op> {
        let mut g = w.spawn(tid);
        let mut v = Vec::new();
        while let Some(op) = g.next_op() {
            v.push(op);
            assert!(v.len() < 5_000_000, "generator runaway");
        }
        v
    }

    #[test]
    fn all_threads_reach_same_barriers() {
        let w = ocean(4, 8, 8);
        let barriers: Vec<Vec<u32>> = (0..4)
            .map(|t| {
                drain(&w, t)
                    .into_iter()
                    .filter_map(|op| match op {
                        Op::Barrier(id) => Some(id),
                        _ => None,
                    })
                    .collect()
            })
            .collect();
        for t in 1..4 {
            assert_eq!(barriers[0], barriers[t], "thread {t} barrier mismatch");
        }
        assert!(!barriers[0].is_empty());
    }

    #[test]
    fn locks_are_balanced() {
        let w = tomcatv(3, 8, 4);
        for t in 0..3 {
            let ops = drain(&w, t);
            let locks = ops.iter().filter(|o| matches!(o, Op::Lock(_))).count();
            let unlocks = ops.iter().filter(|o| matches!(o, Op::Unlock(_))).count();
            assert_eq!(locks, unlocks);
            assert!(locks > 0);
        }
    }

    #[test]
    fn addresses_stay_inside_footprint() {
        let w = swim(2, 16, 8);
        let fp = w.footprint_bytes();
        for t in 0..2 {
            for op in drain(&w, t) {
                let top = match op {
                    Op::Load(a) | Op::Store(a) => a,
                    Op::LoadBatch {
                        base,
                        stride,
                        count,
                    }
                    | Op::StoreBatch {
                        base,
                        stride,
                        count,
                    } => base + stride as u64 * (count as u64 - 1),
                    _ => continue,
                };
                assert!(
                    top < fp + 4096 * 2,
                    "address {top:#x} beyond footprint {fp:#x}"
                );
            }
        }
    }

    #[test]
    fn boundary_rows_touch_neighbours() {
        let w = ocean(4, 8, 8);
        // Thread 1 must read at least one address inside thread 0's rows.
        let (r0, n0) = partition(w.cfg.rows, 4, 0);
        let t0_last_row = w.row_addr(0, r0 + n0 - 1);
        let ops = drain(&w, 1);
        let touches = ops.iter().any(|op| match op {
            Op::LoadBatch { base, .. } => *base == t0_last_row,
            _ => false,
        });
        assert!(touches, "no neighbour boundary read found");
    }

    #[test]
    #[should_panic(expected = "more threads")]
    fn too_many_threads_rejected() {
        Stencil::new(
            StencilCfg {
                name: "x",
                rows: 2,
                row_bytes: 64,
                arrays: 1,
                iters: 1,
                compute_per_row: 1,
                reduction: false,
                serial_init_arrays: 0,
                l1_kb: 8,
                l2_kb: 32,
            },
            3,
        );
    }
}
