//! FFT (SPLASH-2): complex 1-D FFT with the six-step algorithm.
//!
//! The memory behaviour that matters: two compute phases that sweep each
//! thread's own contiguous partition (good locality, batched loads), two
//! all-to-all *transpose* phases where every thread reads a block from
//! every other thread's partition, and — crucially — a large
//! *roots-of-unity* array that a single processor initializes (as in the
//! SPLASH-2 code) and every thread then reads throughout both FFT phases.
//! Under first-touch placement the roots pages all live at node 0, so a
//! CC-NUMA machine pays remote accesses for them on every capacity miss,
//! while COMA/AGG replicate them into each node's local memory.

use pimdsm_engine::{SimRng, Zipf};

use crate::layout::{Layout, Region};
use crate::ops::{partition, Batch, ChunkGen, Op, PreloadKind, PreloadRegion, ThreadGen, Workload};

/// The FFT workload model.
#[derive(Debug, Clone)]
pub struct Fft {
    threads: usize,
    points: u64,
    point_bytes: u64,
    data: Region,
    scratch: Region,
    roots: Region,
    compute_per_line: u64,
    footprint: u64,
    roots_zipf: Zipf,
}

impl Fft {
    /// Builds an FFT over `points` complex points (16 bytes each).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or `points` is too small to partition.
    pub fn new(threads: usize, points: u64) -> Self {
        assert!(threads > 0);
        assert!(
            points >= threads as u64 * 64,
            "FFT of {points} points cannot feed {threads} threads"
        );
        let point_bytes = 16;
        let mut l = Layout::new(12);
        let data = l.alloc(points * point_bytes);
        let scratch = l.alloc(points * point_bytes);
        let roots = l.alloc(points * point_bytes / 2);
        let roots_lines = (points * point_bytes / 2 / 64).max(1) as usize;
        Fft {
            threads,
            points,
            point_bytes,
            data,
            scratch,
            roots,
            compute_per_line: 48, // ~log-n butterflies per 4 points
            footprint: l.footprint(),
            // Twiddle-factor reuse is strongly skewed: low-order roots are
            // touched by every butterfly stage.
            roots_zipf: Zipf::new(roots_lines, 0.85),
        }
    }

    /// Number of points.
    pub fn points(&self) -> u64 {
        self.points
    }
}

/// Phases of the six-step FFT we model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    LocalFft1,
    Transpose1,
    LocalFft2,
    Transpose2,
    Done,
}

impl Workload for Fft {
    fn name(&self) -> &'static str {
        "FFT"
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn l1_kb(&self) -> u64 {
        8
    }

    fn l2_kb(&self) -> u64 {
        32
    }

    /// The input data and the roots of unity are initialized by the
    /// master processor before the workers exist (as in SPLASH-2 FFT), so
    /// under first-touch their pages home at thread 0's node, spilling
    /// across the machine by capacity.
    fn preload_regions(&self) -> Vec<PreloadRegion> {
        vec![
            PreloadRegion {
                base: self.data.base(),
                bytes: self.data.bytes(),
                owner_tid: 0,
                kind: PreloadKind::SharedInit,
            },
            PreloadRegion {
                base: self.roots.base(),
                bytes: self.roots.bytes(),
                owner_tid: 0,
                kind: PreloadKind::SharedInit,
            },
        ]
    }

    fn spawn(&self, tid: usize) -> Box<dyn ThreadGen> {
        assert!(tid < self.threads);
        let app = self.clone();
        let t = app.threads as u64;
        let (my_start, my_len) = partition(app.points, app.threads, tid);
        let bytes_per_chunk = 4096u64; // sweep granularity: one page
        let mut phase = Phase::LocalFft1;
        let mut pos = 0u64; // byte offset within my partition
        let mut peer = 0u64; // transpose partner index
        let mut barrier = 0u32;
        let mut rng = SimRng::new(0xFF7 ^ (tid as u64 + 1).wrapping_mul(0x1234_5678));

        Box::new(ChunkGen::new(move |out: &mut Vec<Op>| {
            let my_bytes = my_len * app.point_bytes;
            match phase {
                Phase::LocalFft1 | Phase::LocalFft2 => {
                    let region = if phase == Phase::LocalFft1 {
                        app.data
                    } else {
                        app.scratch
                    };
                    let base = region.base() + my_start * app.point_bytes + pos;
                    let chunk = bytes_per_chunk.min(my_bytes - pos);
                    let lines = (chunk / 64).max(1) as u32;
                    out.push(Op::LoadBatch {
                        base,
                        stride: 64,
                        count: lines,
                    });
                    // Each butterfly stage consumes twiddle factors from
                    // the shared roots array.
                    let mut tw = [0u64; 8];
                    for t in &mut tw {
                        let l = app.roots_zipf.sample(&mut rng) as u64;
                        *t = app.roots.at(l * 64);
                    }
                    out.push(Op::Gather(Batch::new(&tw)));
                    out.push(Op::Compute(app.compute_per_line * lines as u64));
                    out.push(Op::StoreBatch {
                        base,
                        stride: 64,
                        count: lines,
                    });
                    pos += chunk;
                    if pos >= my_bytes {
                        pos = 0;
                        out.push(Op::Barrier(barrier));
                        barrier += 1;
                        phase = if phase == Phase::LocalFft1 {
                            Phase::Transpose1
                        } else {
                            Phase::Transpose2
                        };
                    }
                }
                Phase::Transpose1 | Phase::Transpose2 => {
                    // Read my block from peer's partition, write into my
                    // partition of the other array.
                    let (src_reg, dst_reg) = if phase == Phase::Transpose1 {
                        (app.data, app.scratch)
                    } else {
                        (app.scratch, app.data)
                    };
                    let p = (tid as u64 + peer) % t;
                    let (p_start, p_len) = partition(app.points, app.threads, p as usize);
                    // The sub-block of peer p destined for me.
                    let (blk_off, blk_len) = partition(p_len, app.threads, tid);
                    let src = src_reg.base() + (p_start + blk_off) * app.point_bytes;
                    let bytes = (blk_len * app.point_bytes).max(64);
                    let lines = (bytes / 64).max(1) as u32;
                    out.push(Op::LoadBatch {
                        base: src,
                        stride: 64,
                        count: lines,
                    });
                    let dst = dst_reg.base()
                        + my_start * app.point_bytes
                        + (peer * my_bytes / t) / 64 * 64;
                    out.push(Op::Compute(8 * lines as u64));
                    out.push(Op::StoreBatch {
                        base: dst,
                        stride: 64,
                        count: lines,
                    });
                    peer += 1;
                    if peer == t {
                        peer = 0;
                        out.push(Op::Barrier(barrier));
                        barrier += 1;
                        phase = if phase == Phase::Transpose1 {
                            Phase::LocalFft2
                        } else {
                            Phase::Done
                        };
                    }
                }
                Phase::Done => return false,
            }
            true
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &Fft, tid: usize) -> Vec<Op> {
        let mut g = w.spawn(tid);
        let mut v = Vec::new();
        while let Some(op) = g.next_op() {
            v.push(op);
            assert!(v.len() < 2_000_000);
        }
        v
    }

    #[test]
    fn four_barriers_per_run() {
        let w = Fft::new(4, 4096);
        for t in 0..4 {
            let n = drain(&w, t)
                .iter()
                .filter(|o| matches!(o, Op::Barrier(_)))
                .count();
            assert_eq!(n, 4, "thread {t}");
        }
    }

    #[test]
    fn transpose_reads_every_peer() {
        let w = Fft::new(4, 4096);
        let ops = drain(&w, 0);
        // Collect load bases in the scratch region read during transpose 2
        // — they must span all four partitions of scratch.
        let mut partitions_touched = std::collections::BTreeSet::new();
        for op in &ops {
            if let Op::LoadBatch { base, .. } = op {
                if *base >= w.scratch.base() && *base < w.scratch.base() + w.scratch.bytes() {
                    let off = (base - w.scratch.base()) / 16; // point index
                    for p in 0..4 {
                        let (s, l) = partition(w.points, 4, p);
                        if off >= s && off < s + l {
                            partitions_touched.insert(p);
                        }
                    }
                }
            }
        }
        assert_eq!(partitions_touched.len(), 4, "all-to-all missing peers");
    }

    #[test]
    fn footprint_is_two_arrays() {
        let w = Fft::new(2, 4096);
        assert!(w.footprint_bytes() >= 2 * 4096 * 16);
    }

    #[test]
    fn deterministic_stream() {
        let w = Fft::new(3, 8192);
        assert_eq!(drain(&w, 1), drain(&w, 1));
    }

    #[test]
    #[should_panic(expected = "cannot feed")]
    fn too_few_points() {
        Fft::new(32, 64);
    }
}
