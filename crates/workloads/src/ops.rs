//! The operation vocabulary threads feed to the machine.

/// Up to 16 independent scattered addresses issued together — the size of
/// the paper's load buffer (16 outstanding loads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Batch {
    addrs: [u64; 16],
    len: u8,
}

impl Batch {
    /// Builds a batch from up to 16 addresses.
    ///
    /// # Panics
    ///
    /// Panics if `addrs` is empty or longer than 16.
    pub fn new(addrs: &[u64]) -> Self {
        assert!(
            !addrs.is_empty() && addrs.len() <= 16,
            "batch must hold 1..=16 addresses"
        );
        let mut a = [0u64; 16];
        a[..addrs.len()].copy_from_slice(addrs);
        Batch {
            addrs: a,
            len: addrs.len() as u8,
        }
    }

    /// The addresses.
    pub fn addrs(&self) -> &[u64] {
        &self.addrs[..self.len as usize]
    }

    /// Number of addresses.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Always false by construction.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// One operation of a thread's instruction stream.
///
/// Batched memory operations model the 4-issue out-of-order core of
/// Table 1: the loads of a batch are independent, so the core overlaps
/// their misses (the stall is the *max* of their completion times, with
/// contention serializing shared resources), while a plain [`Op::Load`]
/// is dependent and blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Execute `n` cycles of non-memory work.
    Compute(u64),
    /// A dependent load of one byte address.
    Load(u64),
    /// A store (retires through the write buffer).
    Store(u64),
    /// `count` independent loads at `base + i * stride`.
    LoadBatch {
        /// First byte address.
        base: u64,
        /// Stride in bytes.
        stride: u32,
        /// Number of loads.
        count: u32,
    },
    /// `count` independent stores at `base + i * stride`.
    StoreBatch {
        /// First byte address.
        base: u64,
        /// Stride in bytes.
        stride: u32,
        /// Number of stores.
        count: u32,
    },
    /// Independent scattered loads.
    Gather(Batch),
    /// Independent scattered stores.
    Scatter(Batch),
    /// Global barrier with an id (all threads of the workload must reach
    /// it).
    Barrier(u32),
    /// Acquire lock `id`.
    Lock(u32),
    /// Release lock `id`.
    Unlock(u32),
    /// Computation-in-memory request (Section 2.4): ask the D-node homing
    /// `chunk_addr` to scan `bytes` of data and return `reply_bytes` of
    /// matching-record pointers. Only meaningful on AGG; other
    /// architectures expand it to the equivalent local scan.
    OffloadScan {
        /// Address identifying the chunk (routes to its home D-node).
        chunk_addr: u64,
        /// Bytes the D-node must scan.
        bytes: u64,
        /// D-node processor cycles the scan handler runs for.
        scan_cycles: u64,
        /// Size of the reply (matching pointers).
        reply_bytes: u32,
    },
    /// Opens a service request: everything until the matching
    /// [`Op::ReqEnd`] of the same thread counts toward one per-request
    /// latency sample. `arrival == 0` means closed-loop (the request
    /// starts the cycle the thread issues it); a nonzero `arrival` is an
    /// open-loop scheduled arrival cycle — if the thread reaches the op
    /// late, the lag is charged to the request as queueing delay.
    ReqStart {
        /// Scheduled arrival cycle (0 = closed-loop "now").
        arrival: u64,
        /// Request class (0 = read/get, 1 = write/put, 2 = other).
        class: u8,
    },
    /// Closes the open service request of this thread and records its
    /// latency sample under `class`.
    ReqEnd {
        /// Request class (matches the opening [`Op::ReqStart`]).
        class: u8,
    },
}

/// A lazily-evaluated per-thread operation stream.
pub trait ThreadGen {
    /// The next operation, or `None` when the thread is finished.
    fn next_op(&mut self) -> Option<Op>;
}

/// A complete multi-threaded application model.
pub trait Workload {
    /// Application name (Table 3).
    fn name(&self) -> &'static str;

    /// Number of threads the model was built for.
    fn threads(&self) -> usize;

    /// Creates the generator for thread `tid`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `tid >= threads()`.
    fn spawn(&self, tid: usize) -> Box<dyn ThreadGen>;

    /// Total bytes of application data (sizes machine memory for a target
    /// memory pressure).
    fn footprint_bytes(&self) -> u64;

    /// L1 size in KiB for this application (Table 3).
    fn l1_kb(&self) -> u64;

    /// L2 size in KiB for this application (Table 3).
    fn l2_kb(&self) -> u64;

    /// Barrier id at which the machine may dynamically reconfigure
    /// (Dbase's hash → join transition; `None` for single-phase apps).
    fn reconfig_barrier(&self) -> Option<u32> {
        None
    }

    /// How many threads arrive at barrier `id` (phased workloads whose
    /// thread count changes mid-run override this; everyone else barriers
    /// with all threads).
    fn barrier_width(&self, _id: u32) -> usize {
        self.threads()
    }

    /// Whether thread `tid` only starts after the dynamic reconfiguration
    /// point (threads that exist only in the second phase of a grow-P
    /// reconfiguration).
    fn delayed_start(&self, _tid: usize) -> bool {
        false
    }

    /// Byte regions that are populated before the measured region begins
    /// (initialization data), each with the thread whose node would have
    /// first-touched it. The machine installs them functionally — page
    /// homes assigned, clean copies resident — without simulated time.
    fn preload_regions(&self) -> Vec<PreloadRegion> {
        Vec::new()
    }
}

/// A byte range populated before the run starts, attributed to the thread
/// that would have first-touched it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreloadRegion {
    /// First byte address.
    pub base: u64,
    /// Size in bytes.
    pub bytes: u64,
    /// Thread whose node first-touched the data (e.g. 0 for serial
    /// initialization).
    pub owner_tid: usize,
    /// How the data was left by initialization.
    pub kind: PreloadKind,
}

/// How initialization left a preloaded line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreloadKind {
    /// Written by its owner and not shared since: the owner's memory holds
    /// it dirty (caching architectures) — the bulk of a real footprint.
    ColdPrivate,
    /// Initialized once and read-shared afterwards (tables, constants):
    /// resides clean in backing memory, spread wherever init-time capacity
    /// pushed it.
    SharedInit,
}

/// Adapter turning a chunked refill closure into a [`ThreadGen`].
///
/// Generators produce one "iteration" worth of ops per refill call, which
/// keeps per-thread memory bounded however long the run is. The chunk
/// buffer is pooled: each refill writes into the same `Vec`, cleared but
/// with its capacity kept, so a thread allocates once at warm-up and then
/// streams ops allocation-free no matter how many chunks it produces.
pub struct ChunkGen<R> {
    refill: R,
    buf: Vec<Op>,
    pos: usize,
    done: bool,
}

impl<R: FnMut(&mut Vec<Op>) -> bool> ChunkGen<R> {
    /// Wraps `refill`, which appends the next chunk of ops and returns
    /// `false` when the stream is exhausted.
    pub fn new(refill: R) -> Self {
        ChunkGen {
            refill,
            buf: Vec::new(),
            pos: 0,
            done: false,
        }
    }
}

impl<R: FnMut(&mut Vec<Op>) -> bool> ThreadGen for ChunkGen<R> {
    fn next_op(&mut self) -> Option<Op> {
        loop {
            if self.pos < self.buf.len() {
                let op = self.buf[self.pos];
                self.pos += 1;
                return Some(op);
            }
            if self.done {
                return None;
            }
            self.buf.clear();
            self.pos = 0;
            if !(self.refill)(&mut self.buf) {
                self.done = true;
            }
            if self.buf.is_empty() && self.done {
                return None;
            }
        }
    }
}

/// Splits `total` items into `parts` nearly equal contiguous ranges and
/// returns the `idx`-th as `(start, len)`.
pub fn partition(total: u64, parts: usize, idx: usize) -> (u64, u64) {
    let parts = parts as u64;
    let idx = idx as u64;
    let base = total / parts;
    let rem = total % parts;
    let len = base + u64::from(idx < rem);
    let start = idx * base + idx.min(rem);
    (start, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_holds_addresses() {
        let b = Batch::new(&[1, 2, 3]);
        assert_eq!(b.addrs(), &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    #[should_panic(expected = "1..=16")]
    fn batch_rejects_oversize() {
        Batch::new(&[0; 17]);
    }

    #[test]
    fn chunkgen_streams_all_chunks() {
        let mut n = 0;
        let gen = ChunkGen::new(move |out: &mut Vec<Op>| {
            if n == 3 {
                return false;
            }
            out.push(Op::Compute(n));
            n += 1;
            true
        });
        let mut g = gen;
        let mut seen = Vec::new();
        while let Some(op) = g.next_op() {
            seen.push(op);
        }
        assert_eq!(seen, vec![Op::Compute(0), Op::Compute(1), Op::Compute(2)]);
    }

    #[test]
    fn chunkgen_handles_final_chunk_with_ops() {
        let mut first = true;
        let mut g = ChunkGen::new(move |out: &mut Vec<Op>| {
            if first {
                first = false;
                out.push(Op::Compute(7));
                false // last chunk, but carries an op
            } else {
                false
            }
        });
        assert_eq!(g.next_op(), Some(Op::Compute(7)));
        assert_eq!(g.next_op(), None);
    }

    #[test]
    fn chunkgen_reuses_its_buffer_across_refills() {
        let mut n = 0u64;
        let mut g = ChunkGen::new(move |out: &mut Vec<Op>| {
            if n == 100 {
                return false;
            }
            for i in 0..4 {
                out.push(Op::Compute(n * 4 + i));
            }
            n += 1;
            true
        });
        assert_eq!(g.next_op(), Some(Op::Compute(0)));
        let cap = g.buf.capacity();
        let mut count = 1;
        while g.next_op().is_some() {
            count += 1;
        }
        assert_eq!(count, 400);
        assert_eq!(g.buf.capacity(), cap, "chunk buffer must be pooled");
    }

    #[test]
    fn partition_covers_everything() {
        let total = 103u64;
        let parts = 8;
        let mut covered = 0;
        let mut next_start = 0;
        for i in 0..parts {
            let (s, l) = partition(total, parts, i);
            assert_eq!(s, next_start);
            next_start = s + l;
            covered += l;
        }
        assert_eq!(covered, total);
    }

    #[test]
    fn partition_balanced() {
        for i in 0..7 {
            let (_, l) = partition(100, 7, i);
            assert!(l == 14 || l == 15);
        }
    }
}
