//! Small synthetic kernels with known behaviour, used by tests and
//! ablation benches to probe specific protocol paths.

use pimdsm_engine::SimRng;

use crate::layout::{Layout, Region};
use crate::ops::{Batch, ChunkGen, Op, ThreadGen, Workload};

/// Each thread streams over its own private region: no sharing, pure
/// capacity/locality behaviour.
#[derive(Debug, Clone)]
pub struct PrivateStream {
    threads: usize,
    regions: Vec<Region>,
    passes: u32,
    footprint: u64,
}

impl PrivateStream {
    /// `bytes_per_thread` of private data, swept `passes` times.
    pub fn new(threads: usize, bytes_per_thread: u64, passes: u32) -> Self {
        assert!(threads > 0);
        let mut l = Layout::new(12);
        let regions = l.alloc_per_thread(threads, bytes_per_thread);
        PrivateStream {
            threads,
            regions,
            passes,
            footprint: l.footprint(),
        }
    }
}

impl Workload for PrivateStream {
    fn name(&self) -> &'static str {
        "PrivateStream"
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn l1_kb(&self) -> u64 {
        8
    }

    fn l2_kb(&self) -> u64 {
        32
    }

    fn spawn(&self, tid: usize) -> Box<dyn ThreadGen> {
        assert!(tid < self.threads);
        let region = self.regions[tid];
        let passes = self.passes;
        let mut pass = 0u32;
        let mut pos = 0u64;
        Box::new(ChunkGen::new(move |out: &mut Vec<Op>| {
            if pass >= passes {
                return false;
            }
            let chunk = 4096u64.min(region.bytes() - pos);
            out.push(Op::LoadBatch {
                base: region.at(pos),
                stride: 64,
                count: (chunk / 64).max(1) as u32,
            });
            out.push(Op::Compute(chunk / 8));
            pos += chunk;
            if pos >= region.bytes() {
                pos = 0;
                pass += 1;
            }
            true
        }))
    }
}

/// All threads write one small shared region: worst-case invalidation
/// ping-pong.
#[derive(Debug, Clone)]
pub struct HotSpot {
    threads: usize,
    region: Region,
    writes_per_thread: u64,
    footprint: u64,
}

impl HotSpot {
    /// `lines` shared lines, `writes_per_thread` scattered writes each.
    pub fn new(threads: usize, lines: u64, writes_per_thread: u64) -> Self {
        assert!(threads > 0 && lines > 0);
        let mut l = Layout::new(12);
        let region = l.alloc(lines * 64);
        HotSpot {
            threads,
            region,
            writes_per_thread,
            footprint: l.footprint(),
        }
    }
}

impl Workload for HotSpot {
    fn name(&self) -> &'static str {
        "HotSpot"
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn l1_kb(&self) -> u64 {
        8
    }

    fn l2_kb(&self) -> u64 {
        32
    }

    fn spawn(&self, tid: usize) -> Box<dyn ThreadGen> {
        assert!(tid < self.threads);
        let region = self.region;
        let total = self.writes_per_thread;
        let mut rng = SimRng::new(0x407 ^ (tid as u64) << 16);
        let mut done = 0u64;
        Box::new(ChunkGen::new(move |out: &mut Vec<Op>| {
            if done >= total {
                return false;
            }
            let n = 16.min(total - done);
            let mut addrs = [0u64; 16];
            for a in &mut addrs[..n as usize] {
                *a = region.at(rng.range(0, region.bytes() / 64) * 64);
            }
            out.push(Op::Scatter(Batch::new(&addrs[..n as usize])));
            out.push(Op::Compute(20));
            done += n;
            true
        }))
    }
}

/// All threads read a shared region uniformly at random: read-sharing with
/// replication pressure but no invalidations after warm-up.
#[derive(Debug, Clone)]
pub struct SharedRead {
    threads: usize,
    region: Region,
    reads_per_thread: u64,
    footprint: u64,
}

impl SharedRead {
    /// `bytes` of shared data, `reads_per_thread` random reads each.
    pub fn new(threads: usize, bytes: u64, reads_per_thread: u64) -> Self {
        assert!(threads > 0 && bytes >= 64);
        let mut l = Layout::new(12);
        let region = l.alloc(bytes);
        SharedRead {
            threads,
            region,
            reads_per_thread,
            footprint: l.footprint(),
        }
    }
}

impl Workload for SharedRead {
    fn name(&self) -> &'static str {
        "SharedRead"
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn l1_kb(&self) -> u64 {
        8
    }

    fn l2_kb(&self) -> u64 {
        32
    }

    fn spawn(&self, tid: usize) -> Box<dyn ThreadGen> {
        assert!(tid < self.threads);
        let region = self.region;
        let total = self.reads_per_thread;
        let mut rng = SimRng::new(0x5EAD ^ (tid as u64) << 8);
        let mut done = 0u64;
        Box::new(ChunkGen::new(move |out: &mut Vec<Op>| {
            if done >= total {
                return false;
            }
            let n = 16.min(total - done);
            let mut addrs = [0u64; 16];
            for a in &mut addrs[..n as usize] {
                *a = region.at(rng.range(0, region.bytes() / 64) * 64);
            }
            out.push(Op::Gather(Batch::new(&addrs[..n as usize])));
            out.push(Op::Compute(30));
            done += n;
            true
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_ops(w: &dyn Workload, tid: usize) -> usize {
        let mut g = w.spawn(tid);
        let mut n = 0;
        while g.next_op().is_some() {
            n += 1;
            assert!(n < 1_000_000);
        }
        n
    }

    #[test]
    fn private_stream_terminates() {
        let w = PrivateStream::new(2, 64 * 1024, 2);
        assert!(count_ops(&w, 0) > 10);
        assert!(count_ops(&w, 1) > 10);
    }

    #[test]
    fn private_regions_disjoint() {
        let w = PrivateStream::new(4, 8192, 1);
        for i in 1..4 {
            assert!(w.regions[i - 1].base() + w.regions[i - 1].bytes() <= w.regions[i].base());
        }
    }

    #[test]
    fn hotspot_writes_requested_count() {
        let w = HotSpot::new(2, 4, 100);
        let mut g = w.spawn(0);
        let mut writes = 0;
        while let Some(op) = g.next_op() {
            if let Op::Scatter(b) = op {
                writes += b.len();
            }
        }
        assert_eq!(writes, 100);
    }

    #[test]
    fn shared_read_addresses_in_region() {
        let w = SharedRead::new(2, 4096, 64);
        let mut g = w.spawn(1);
        while let Some(op) = g.next_op() {
            if let Op::Gather(b) = op {
                for &a in b.addrs() {
                    assert!(a >= w.region.base() && a < w.region.base() + 4096);
                }
            }
        }
    }
}
