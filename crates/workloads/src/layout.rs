//! Address-space layout for workload data structures.

/// A named contiguous byte range of the shared address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    base: u64,
    bytes: u64,
}

impl Region {
    /// Builds a region directly from a base address and size (for
    /// wrappers that place data outside a [`Layout`]).
    pub fn from_raw(base: u64, bytes: u64) -> Region {
        Region { base, bytes }
    }

    /// First byte address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Address of byte `off` within the region.
    ///
    /// # Panics
    ///
    /// Panics if `off` is outside the region.
    pub fn at(&self, off: u64) -> u64 {
        assert!(
            off < self.bytes,
            "offset {off} outside region of {} B",
            self.bytes
        );
        self.base + off
    }

    /// Address of element `i` of an array of `elem_bytes`-sized items.
    pub fn elem(&self, i: u64, elem_bytes: u64) -> u64 {
        self.at(i * elem_bytes)
    }

    /// The `idx`-th of `parts` contiguous sub-regions (page-aligned
    /// partitioning is the caller's concern).
    pub fn split(&self, parts: usize, idx: usize) -> Region {
        let (start, len) = crate::ops::partition(self.bytes, parts, idx);
        Region {
            base: self.base + start,
            bytes: len,
        }
    }
}

/// A bump allocator building a workload's address space.
///
/// Regions are page-aligned so first-touch page placement maps each
/// logical structure (and each thread's partition) cleanly onto homes.
///
/// # Examples
///
/// ```
/// use pimdsm_workloads::Layout;
///
/// let mut l = Layout::new(12);
/// let keys = l.alloc(100_000);
/// let hist = l.alloc(4096);
/// assert_eq!(keys.base() % 4096, 0);
/// assert_eq!(hist.base() % 4096, 0);
/// assert!(hist.base() >= keys.base() + keys.bytes());
/// ```
#[derive(Debug, Clone)]
pub struct Layout {
    next: u64,
    page_bytes: u64,
}

impl Layout {
    /// Creates an empty layout with `1 << page_shift`-byte pages.
    pub fn new(page_shift: u32) -> Self {
        Layout {
            next: 1 << page_shift, // leave page 0 unused
            page_bytes: 1 << page_shift,
        }
    }

    /// Allocates a page-aligned region of at least `bytes`.
    pub fn alloc(&mut self, bytes: u64) -> Region {
        let base = self.next;
        let rounded = bytes.div_ceil(self.page_bytes) * self.page_bytes;
        self.next += rounded.max(self.page_bytes);
        Region { base, bytes }
    }

    /// Allocates one page-aligned region per thread (so each partition's
    /// pages first-touch to its owner).
    pub fn alloc_per_thread(&mut self, threads: usize, bytes_each: u64) -> Vec<Region> {
        (0..threads).map(|_| self.alloc(bytes_each)).collect()
    }

    /// Total bytes allocated (footprint), including alignment padding.
    pub fn footprint(&self) -> u64 {
        self.next - self.page_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let mut l = Layout::new(12);
        let a = l.alloc(5000);
        let b = l.alloc(100);
        assert!(a.base() + 5000 <= b.base());
        assert_eq!(b.base() % 4096, 0);
    }

    #[test]
    fn footprint_counts_padding() {
        let mut l = Layout::new(12);
        l.alloc(1); // one page
        l.alloc(4097); // two pages
        assert_eq!(l.footprint(), 3 * 4096);
    }

    #[test]
    fn elem_addresses() {
        let mut l = Layout::new(12);
        let r = l.alloc(1024);
        assert_eq!(r.elem(3, 8), r.base() + 24);
    }

    #[test]
    #[should_panic(expected = "outside region")]
    fn at_checks_bounds() {
        let mut l = Layout::new(12);
        l.alloc(16).at(16);
    }

    #[test]
    fn split_partitions_region() {
        let mut l = Layout::new(12);
        let r = l.alloc(1000);
        let total: u64 = (0..4).map(|i| r.split(4, i).bytes()).sum();
        assert_eq!(total, 1000);
        assert_eq!(r.split(4, 0).base(), r.base());
    }

    #[test]
    fn per_thread_allocs_are_page_separated() {
        let mut l = Layout::new(12);
        let rs = l.alloc_per_thread(4, 100);
        for w in rs.windows(2) {
            assert!(w[1].base() >= w[0].base() + 4096);
        }
    }
}
