//! Synthetic workload models for the PIM-DSM simulator.
//!
//! The paper drives its evaluation with seven applications (Table 3): four
//! SPLASH-2 codes (FFT, Radix, Ocean, Barnes), two SPEC95 codes
//! automatically parallelized by SUIF (Swim, Tomcatv), and TPC-D query 3
//! (Dbase). We cannot execute the original MIPS binaries, so each
//! application is modeled as a deterministic per-thread generator of
//! [`Op`]s that reproduces the *memory behaviour the protocols care
//! about*: partitioning, phase structure, sharing pattern (all-to-all
//! transpose, scattered permutation writes, nearest-neighbour stencils,
//! Zipf-shared tree reads, streaming scans with hash-table build/probe),
//! working-set sizes relative to the caches of Table 3, and
//! synchronization (barriers and locks).
//!
//! Problem sizes scale with [`Scale`] so the full evaluation runs in
//! minutes; memory pressure (the paper's swept parameter) is preserved by
//! sizing machine memory from [`Workload::footprint_bytes`].

pub mod apps;
pub mod catalog;
pub mod cold;
pub mod kernels;
pub mod layout;
pub mod ops;

pub use catalog::{build, build_dbase, dbase_table_bytes, AppId, Scale, ALL_APPS};
pub use cold::WithColdData;
pub use layout::{Layout, Region};
pub use ops::{Batch, Op, PreloadKind, PreloadRegion, ThreadGen, Workload};
