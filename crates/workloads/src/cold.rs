//! Cold-data wrapper: gives a workload the footprint-vs-active-set ratio
//! of real applications.
//!
//! The paper's memory pressure is *mapped footprint* over machine DRAM,
//! and its applications map considerably more memory than they actively
//! sweep (whole tables of which a query reads a few columns, auxiliary
//! arrays, allocator slack). Our synthetic generators re-reference their
//! entire layout, so sizing machines against that alone would overstate
//! pressure on the caching memories. [`WithColdData`] appends a cold
//! region that is populated (via [`Workload::preload_regions`]) before
//! the measured run begins, sitting in the backing memories exactly like
//! the "D-Node Only" population of Figure 8 — restoring a realistic
//! active:mapped ratio without simulating initialization traffic the
//! paper also excludes from its measurement window.

use crate::layout::Region;
use crate::ops::{PreloadRegion, ThreadGen, Workload};

/// A workload plus a once-written cold region.
pub struct WithColdData {
    inner: Box<dyn Workload>,
    cold: Region,
    participants: usize,
}

impl WithColdData {
    /// Wraps `inner`, appending `factor` × its footprint of cold data.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn new(inner: Box<dyn Workload>, factor: f64) -> Self {
        assert!(factor.is_finite() && factor >= 0.0, "bad cold factor");
        let base = inner.footprint_bytes();
        let cold_bytes = ((base as f64 * factor) as u64).div_ceil(4096) * 4096;
        // Leave a guard page between the inner layout and the cold region.
        let cold_base = base.div_ceil(4096) * 4096 + 4096;
        let participants = (0..inner.threads())
            .filter(|&t| !inner.delayed_start(t))
            .count();
        WithColdData {
            inner,
            cold: Region::from_raw(cold_base, cold_bytes),
            participants,
        }
    }

    /// The cold region (tests).
    pub fn cold_region(&self) -> Region {
        self.cold
    }
}

impl Workload for WithColdData {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn threads(&self) -> usize {
        self.inner.threads()
    }

    fn footprint_bytes(&self) -> u64 {
        self.cold.base() + self.cold.bytes()
    }

    fn l1_kb(&self) -> u64 {
        self.inner.l1_kb()
    }

    fn l2_kb(&self) -> u64 {
        self.inner.l2_kb()
    }

    fn reconfig_barrier(&self) -> Option<u32> {
        self.inner.reconfig_barrier()
    }

    fn barrier_width(&self, id: u32) -> usize {
        self.inner.barrier_width(id)
    }

    fn delayed_start(&self, tid: usize) -> bool {
        self.inner.delayed_start(tid)
    }

    fn preload_regions(&self) -> Vec<PreloadRegion> {
        let mut regions = self.inner.preload_regions();
        if self.cold.bytes() >= 64 {
            for tid in 0..self.participants {
                let slice = self.cold.split(self.participants, tid);
                if slice.bytes() >= 64 {
                    regions.push(PreloadRegion {
                        base: slice.base(),
                        bytes: slice.bytes(),
                        owner_tid: tid,
                        kind: crate::ops::PreloadKind::ColdPrivate,
                    });
                }
            }
        }
        regions
    }

    fn spawn(&self, tid: usize) -> Box<dyn ThreadGen> {
        self.inner.spawn(tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::PrivateStream;

    fn wrapped(factor: f64) -> WithColdData {
        WithColdData::new(Box::new(PrivateStream::new(2, 8192, 1)), factor)
    }

    #[test]
    fn footprint_grows_by_factor() {
        let plain = PrivateStream::new(2, 8192, 1).footprint_bytes();
        let w = wrapped(1.0);
        assert!(w.footprint_bytes() >= plain * 2);
    }

    #[test]
    fn preload_regions_cover_cold_region() {
        let w = wrapped(1.0);
        let cold = w.cold_region();
        let regions = w.preload_regions();
        assert_eq!(regions.len(), 2);
        let total: u64 = regions.iter().map(|r| r.bytes).sum();
        assert_eq!(total, cold.bytes());
        assert_eq!(regions[0].base, cold.base());
        assert_eq!(regions[0].owner_tid, 0);
        assert_eq!(regions[1].owner_tid, 1);
    }

    #[test]
    fn cold_region_beyond_inner_footprint() {
        let inner = PrivateStream::new(2, 8192, 1);
        let inner_fp = inner.footprint_bytes();
        let w = WithColdData::new(Box::new(inner), 0.5);
        assert!(w.cold_region().base() >= inner_fp);
    }

    #[test]
    fn zero_factor_adds_nothing() {
        let w = wrapped(0.0);
        assert!(w.preload_regions().is_empty());
        let mut g = w.spawn(0);
        assert!(g.next_op().is_some());
    }

    #[test]
    fn inner_metadata_passes_through() {
        let w = wrapped(1.0);
        assert_eq!(w.name(), "PrivateStream");
        assert_eq!(w.threads(), 2);
        assert_eq!(w.l1_kb(), 8);
        assert_eq!(w.reconfig_barrier(), None);
        assert_eq!(w.barrier_width(0), 2);
    }
}
