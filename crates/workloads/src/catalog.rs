//! The application catalog: Table 3 of the paper, with problem-size
//! scaling.

use crate::apps::{stencil, Barnes, Dbase, Fft, Radix};
use crate::ops::Workload;

/// One of the paper's seven applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppId {
    /// Complex 1-D FFT, 64K points (SPLASH-2).
    Fft,
    /// Integer radix sort, 1M keys / 1K radix (SPLASH-2).
    Radix,
    /// Ocean current simulation, 256×256 grid (SPLASH-2).
    Ocean,
    /// Barnes-Hut N-body, 16K bodies (SPLASH-2).
    Barnes,
    /// Shallow-water weather prediction (SPEC95, SUIF-parallelized).
    Swim,
    /// Vectorized mesh generation (SPEC95, SUIF-parallelized).
    Tomcatv,
    /// TPC-D query 3 on a 1 GB database, hand-parallelized.
    Dbase,
}

/// All seven applications, in the paper's order.
pub const ALL_APPS: [AppId; 7] = [
    AppId::Fft,
    AppId::Radix,
    AppId::Ocean,
    AppId::Barnes,
    AppId::Swim,
    AppId::Tomcatv,
    AppId::Dbase,
];

impl AppId {
    /// The paper's name for the application.
    pub fn name(self) -> &'static str {
        match self {
            AppId::Fft => "FFT",
            AppId::Radix => "Radix",
            AppId::Ocean => "Ocean",
            AppId::Barnes => "Barnes",
            AppId::Swim => "Swim",
            AppId::Tomcatv => "Tomcat",
            AppId::Dbase => "Dbase",
        }
    }

    /// Table 3's problem-size description.
    pub fn description(self) -> &'static str {
        match self {
            AppId::Fft => "Complex 1-D FFT with 64K points",
            AppId::Radix => "Integer radix sort with 1M keys and a 1K radix",
            AppId::Ocean => "Current simulation with a 256x256 grid",
            AppId::Barnes => "N-body problem with 16K bodies",
            AppId::Swim => "Weather prediction with Ref. problem size",
            AppId::Tomcatv => "Fluid dynamics with Ref. problem size",
            AppId::Dbase => "TPC-D query 3 with 1GB database",
        }
    }

    /// (L1, L2) sizes in KiB (Table 3).
    pub fn cache_kb(self) -> (u64, u64) {
        match self {
            AppId::Fft | AppId::Radix | AppId::Ocean | AppId::Barnes => (8, 32),
            AppId::Swim => (32, 128),
            AppId::Tomcatv => (64, 256),
            AppId::Dbase => (64, 512),
        }
    }

    /// Whether the paper pairs this app with the 1/2 (rather than 1/4)
    /// D-to-P node ratio in Figure 6 ("they put relatively more demands
    /// on the D-nodes").
    pub fn wants_half_ratio(self) -> bool {
        matches!(self, AppId::Fft | AppId::Radix | AppId::Ocean)
    }
}

/// Problem-size scaling: every linear dimension is divided by `size_div`
/// and iteration counts by `iter_div`, keeping the *shape* of each
/// workload while letting the full evaluation run in minutes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Divisor on problem sizes.
    pub size_div: u64,
    /// Divisor on iteration/step counts.
    pub iter_div: u64,
}

impl Scale {
    /// The paper's full problem sizes (slow: hours of simulation).
    pub fn full() -> Self {
        Scale {
            size_div: 1,
            iter_div: 1,
        }
    }

    /// Default benchmark scale (~minutes for the whole evaluation).
    pub fn bench() -> Self {
        Scale {
            size_div: 8,
            iter_div: 2,
        }
    }

    /// Tiny scale for CI tests (~seconds).
    pub fn ci() -> Self {
        Scale {
            size_div: 32,
            iter_div: 8,
        }
    }

    fn shrink(&self, v: u64, min: u64) -> u64 {
        (v / self.size_div.max(1)).max(min)
    }

    fn shrink_iters(&self, v: u64, min: u64) -> u64 {
        (v / self.iter_div.max(1)).max(min)
    }
}

/// Builds the model of `app` for `threads` threads at the given scale.
///
/// # Examples
///
/// ```
/// use pimdsm_workloads::{build, AppId, Scale};
///
/// let w = build(AppId::Fft, 8, Scale::ci());
/// assert_eq!(w.name(), "FFT");
/// assert_eq!(w.threads(), 8);
/// assert!(w.footprint_bytes() > 0);
/// ```
pub fn build(app: AppId, threads: usize, scale: Scale) -> Box<dyn Workload> {
    Box::new(crate::cold::WithColdData::new(
        build_active(app, threads, scale),
        COLD_FACTOR,
    ))
}

/// Ratio of once-touched (cold) to actively swept data appended to every
/// application (see `cold` module docs).
pub const COLD_FACTOR: f64 = 2.0;

/// Builds the active part of `app` without the cold-data wrapper.
pub fn build_active(app: AppId, threads: usize, scale: Scale) -> Box<dyn Workload> {
    match app {
        AppId::Fft => {
            // Keep at least 1K points (16 KiB) per thread so the local
            // FFT phases have capacity working sets, as in the paper.
            let points = scale.shrink(64 * 1024, threads as u64 * 1024);
            Box::new(Fft::new(threads, points))
        }
        AppId::Radix => {
            let keys = scale.shrink(1024 * 1024, threads as u64 * 256);
            let passes = scale.shrink_iters(4, 2) as u32;
            Box::new(Radix::new(threads, keys, passes))
        }
        AppId::Ocean => Box::new(stencil::ocean(threads, scale.size_div, scale.iter_div)),
        AppId::Barnes => {
            let bodies = scale.shrink(16 * 1024, threads as u64 * 32);
            let steps = scale.shrink_iters(4, 1) as u32;
            Box::new(Barnes::new(threads, bodies, steps))
        }
        AppId::Swim => Box::new(stencil::swim(threads, scale.size_div, scale.iter_div)),
        AppId::Tomcatv => Box::new(stencil::tomcatv(threads, scale.size_div, scale.iter_div)),
        AppId::Dbase => {
            let table = dbase_table_bytes(threads, scale);
            Box::new(Dbase::new(threads, threads, table, false))
        }
    }
}

/// Table size used for the Dbase model at a given scale (the paper's
/// 1 GB database holds two working tables; we scale them down together).
pub fn dbase_table_bytes(threads: usize, scale: Scale) -> u64 {
    let raw = (256u64 * 1024 * 1024) / scale.size_div.max(1) / 4;
    raw.max(threads as u64 * 16 * 1024)
}

/// Builds the Dbase model with distinct phase thread counts and optional
/// computation-in-memory offload (Figures 10-(a) and 10-(b)).
pub fn build_dbase(
    hash_threads: usize,
    join_threads: usize,
    scale: Scale,
    offload: bool,
) -> Box<dyn Workload> {
    let table = dbase_table_bytes(hash_threads.max(join_threads), scale);
    Box::new(crate::cold::WithColdData::new(
        Box::new(Dbase::new(hash_threads, join_threads, table, offload)),
        COLD_FACTOR,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_apps_build_and_spawn() {
        for app in ALL_APPS {
            let w = build(app, 4, Scale::ci());
            assert_eq!(w.threads(), 4);
            assert!(w.footprint_bytes() > 0, "{:?}", app);
            let mut g = w.spawn(0);
            assert!(g.next_op().is_some(), "{:?} generates no ops", app);
            let (l1, l2) = app.cache_kb();
            assert_eq!(w.l1_kb(), l1);
            assert_eq!(w.l2_kb(), l2);
        }
    }

    #[test]
    fn apps_build_for_many_thread_counts() {
        for &t in &[2usize, 3, 8, 32] {
            for app in ALL_APPS {
                let w = build(app, t, Scale::ci());
                assert_eq!(w.threads(), t, "{app:?} x{t}");
            }
        }
    }

    #[test]
    fn scale_orders_footprints() {
        for app in ALL_APPS {
            let big = build(app, 4, Scale::bench()).footprint_bytes();
            let small = build(app, 4, Scale::ci()).footprint_bytes();
            assert!(big >= small, "{app:?}: bench {big} < ci {small}");
        }
    }

    #[test]
    fn dbase_reconfig_variant() {
        let w = build_dbase(2, 4, Scale::ci(), false);
        assert_eq!(w.threads(), 4);
        assert!(w.reconfig_barrier().is_some());
        let opt = build_dbase(2, 2, Scale::ci(), true);
        assert!(opt.reconfig_barrier().is_none());
    }

    #[test]
    fn names_match_table3() {
        let names: Vec<&str> = ALL_APPS.iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec!["FFT", "Radix", "Ocean", "Barnes", "Swim", "Tomcat", "Dbase"]
        );
    }
}
