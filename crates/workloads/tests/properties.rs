//! Property-based tests: every generated workload is well-formed — the
//! machine driver relies on these invariants to avoid deadlock.

use std::collections::HashMap;

use proptest::prelude::*;

use pimdsm_workloads::{build, AppId, Op, Scale, ALL_APPS};

fn drain(w: &dyn pimdsm_workloads::Workload, tid: usize) -> Vec<Op> {
    let mut g = w.spawn(tid);
    let mut ops = Vec::new();
    while let Some(op) = g.next_op() {
        ops.push(op);
        assert!(ops.len() < 3_000_000, "generator runaway");
    }
    ops
}

fn app_strategy() -> impl Strategy<Value = AppId> {
    proptest::sample::select(ALL_APPS.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every thread of a workload emits the same barrier-id sequence for
    /// the barriers it participates in, with per-id arrival counts that
    /// match the declared widths — the condition for deadlock freedom.
    #[test]
    fn barrier_arrivals_match_declared_widths(
        app in app_strategy(),
        threads in 2usize..6,
    ) {
        let w = build(app, threads, Scale::ci());
        let mut arrivals: HashMap<u32, usize> = HashMap::new();
        for tid in 0..threads {
            for op in drain(&*w, tid) {
                if let Op::Barrier(id) = op {
                    *arrivals.entry(id).or_insert(0) += 1;
                }
            }
        }
        for (id, count) in arrivals {
            prop_assert_eq!(
                count,
                w.barrier_width(id),
                "barrier {} arrival mismatch in {:?}", id, app
            );
        }
    }

    /// Locks are always released by their acquirer, in nesting-free
    /// acquire/release pairs.
    #[test]
    fn locks_are_balanced_and_unnested(app in app_strategy(), threads in 2usize..5) {
        let w = build(app, threads, Scale::ci());
        for tid in 0..threads {
            let mut held: Option<u32> = None;
            for op in drain(&*w, tid) {
                match op {
                    Op::Lock(id) => {
                        prop_assert!(held.is_none(), "nested lock in {:?}", app);
                        held = Some(id);
                    }
                    Op::Unlock(id) => {
                        prop_assert_eq!(held, Some(id), "unbalanced unlock in {:?}", app);
                        held = None;
                    }
                    _ => {}
                }
            }
            prop_assert!(held.is_none(), "thread ended holding a lock in {:?}", app);
        }
    }

    /// All generated addresses stay inside the declared footprint (the
    /// machine sizes memory from it).
    #[test]
    fn addresses_within_footprint(app in app_strategy(), threads in 2usize..5) {
        let w = build(app, threads, Scale::ci());
        let fp = w.footprint_bytes();
        let check = |a: u64| a < fp;
        for tid in 0..threads {
            for op in drain(&*w, tid) {
                let ok = match op {
                    Op::Load(a) | Op::Store(a) => check(a),
                    Op::LoadBatch { base, stride, count }
                    | Op::StoreBatch { base, stride, count } => {
                        check(base + stride as u64 * (count.max(1) as u64 - 1))
                    }
                    Op::Gather(b) | Op::Scatter(b) => b.addrs().iter().all(|&a| check(a)),
                    Op::OffloadScan { chunk_addr, bytes, .. } => check(chunk_addr + bytes - 1),
                    _ => true,
                };
                prop_assert!(ok, "address outside footprint in {:?}", app);
            }
        }
    }

    /// Preload regions stay inside the footprint and are attributed to
    /// valid threads.
    #[test]
    fn preload_regions_are_valid(app in app_strategy(), threads in 2usize..6) {
        let w = build(app, threads, Scale::ci());
        for r in w.preload_regions() {
            prop_assert!(r.base + r.bytes <= w.footprint_bytes());
            prop_assert!(r.owner_tid < threads);
            prop_assert!(r.bytes >= 64);
        }
    }

    /// Generators are deterministic: two spawns of the same thread yield
    /// identical streams.
    #[test]
    fn spawns_are_deterministic(app in app_strategy(), threads in 2usize..4) {
        let w = build(app, threads, Scale::ci());
        for tid in 0..threads {
            prop_assert_eq!(drain(&*w, tid), drain(&*w, tid));
        }
    }
}
