//! Shared harness for regenerating the paper's tables and figures.
//!
//! Each binary in this crate regenerates one table or figure of the
//! evaluation section (see `DESIGN.md` for the experiment index); this
//! library holds the run matrix and formatting they share.

use std::path::PathBuf;

use pimdsm::{ArchSpec, Machine, RunReport};
use pimdsm_engine::Cycle;
use pimdsm_obs::{JsonValue, ToJson, Tracer};
use pimdsm_workloads::{build, AppId, Scale};

/// The machine configurations of Figure 6, in presentation order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Config {
    /// CC-NUMA at a given pressure (pressure only sizes memory; NUMA bars
    /// are pressure-insensitive in the paper and plotted once).
    Numa,
    /// Flat COMA at `pressure`.
    Coma {
        /// Memory pressure (0.25 / 0.75).
        pressure: f64,
    },
    /// AGG with a D:P ratio of `1/ratio` at `pressure`.
    Agg {
        /// P-nodes per D-node (1, 2 or 4).
        ratio: usize,
        /// Memory pressure (0.25 / 0.75).
        pressure: f64,
    },
}

impl Config {
    /// Label in the paper's style ("1/4AGG75", "COMA25", "NUMA").
    pub fn label(&self) -> String {
        match self {
            Config::Numa => "NUMA".to_string(),
            Config::Coma { pressure } => format!("COMA{}", (pressure * 100.0) as u32),
            Config::Agg { ratio, pressure } => {
                format!("1/{}AGG{}", ratio, (pressure * 100.0) as u32)
            }
        }
    }

    /// Memory pressure used for sizing.
    pub fn pressure(&self) -> f64 {
        match self {
            Config::Numa => 0.75,
            Config::Coma { pressure } | Config::Agg { pressure, .. } => *pressure,
        }
    }
}

/// Runs one application under one configuration.
pub fn run_config(app: AppId, threads: usize, scale: Scale, config: Config) -> RunReport {
    let workload = build(app, threads, scale);
    let spec = match config {
        Config::Numa => ArchSpec::Numa,
        Config::Coma { .. } => ArchSpec::Coma,
        Config::Agg { ratio, .. } => ArchSpec::Agg {
            n_d: (threads / ratio).max(1),
        },
    };
    let mut machine = Machine::build(spec, workload, config.pressure()).with_label(config.label());
    machine.run()
}

/// Like [`run_config`], but instrumented through [`Obs`]: the run is
/// traced/sampled according to the binary's CLI flags and its report is
/// collected for the machine-readable outputs.
pub fn run_config_obs(
    app: AppId,
    threads: usize,
    scale: Scale,
    config: Config,
    obs: &mut Obs,
) -> RunReport {
    let workload = build(app, threads, scale);
    let spec = match config {
        Config::Numa => ArchSpec::Numa,
        Config::Coma { .. } => ArchSpec::Coma,
        Config::Agg { ratio, .. } => ArchSpec::Agg {
            n_d: (threads / ratio).max(1),
        },
    };
    let mut machine = Machine::build(spec, workload, config.pressure()).with_label(config.label());
    obs.run_machine(&mut machine, &format!("{}:{}", app.name(), config.label()))
}

/// Observability surface shared by every bench binary.
///
/// Parses the common CLI flags, instruments the machines the binary runs,
/// and writes the machine-readable outputs at exit:
///
/// * `--trace <path>` — write a Chrome trace-event JSON (loadable in
///   Perfetto / `chrome://tracing`) of **one** run: the first run whose
///   key (`APP:LABEL`) contains the optional `--trace-only <substr>`
///   filter, or simply the first run.
/// * `--metrics <path>` — sample every run's counters each epoch
///   (`--epoch <cycles>`, default 100000) and write the per-run
///   time-series as JSON.
/// * `--report <path>` — write every [`RunReport`] of the binary as JSON.
///   Without the flag, the same document is written to
///   `results/<bin>.json` when a `results/` directory exists in the
///   working directory, so regenerating the text tables also refreshes
///   the machine-readable results.
pub struct Obs {
    bin: &'static str,
    trace_path: Option<PathBuf>,
    trace_only: Option<String>,
    metrics_path: Option<PathBuf>,
    report_path: Option<PathBuf>,
    epoch: Cycle,
    tracer: Option<Tracer>,
    reports: Vec<RunReport>,
}

impl Obs {
    /// Parses the observability flags from `std::env::args`.
    /// Unrecognized arguments are reported on stderr and ignored.
    pub fn from_args(bin: &'static str) -> Obs {
        let mut obs = Obs {
            bin,
            trace_path: None,
            trace_only: None,
            metrics_path: None,
            report_path: None,
            epoch: 100_000,
            tracer: None,
            reports: Vec::new(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut value = |flag: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("{flag} requires a value"))
            };
            match arg.as_str() {
                "--trace" => obs.trace_path = Some(value("--trace").into()),
                "--trace-only" => obs.trace_only = Some(value("--trace-only")),
                "--metrics" => obs.metrics_path = Some(value("--metrics").into()),
                "--report" => obs.report_path = Some(value("--report").into()),
                "--epoch" => {
                    obs.epoch = value("--epoch")
                        .parse()
                        .expect("--epoch takes a cycle count")
                }
                other => eprintln!("[obs] ignoring unknown argument {other:?}"),
            }
        }
        obs
    }

    /// Attaches tracing/sampling to `machine` per the CLI flags. `key`
    /// identifies the run for `--trace-only` matching ("FFT:1/1AGG75").
    pub fn instrument(&mut self, machine: &mut Machine, key: &str) {
        if self.trace_path.is_some() && self.tracer.is_none() {
            let matches = self.trace_only.as_deref().is_none_or(|f| key.contains(f));
            if matches {
                let tracer = Tracer::enabled();
                machine.attach_tracer(tracer.clone());
                self.tracer = Some(tracer);
                eprintln!("[obs] tracing run {key}");
            }
        }
        if self.metrics_path.is_some() {
            machine.sample_epochs(self.epoch);
        }
    }

    /// Instruments `machine`, runs it, and records the report.
    pub fn run_machine(&mut self, machine: &mut Machine, key: &str) -> RunReport {
        self.instrument(machine, key);
        let report = machine.run();
        self.reports.push(report.clone());
        report
    }

    /// Records an externally produced report (for binaries that run
    /// machines through their own paths).
    pub fn record(&mut self, report: &RunReport) {
        self.reports.push(report.clone());
    }

    /// Writes the requested outputs. Call once at the end of `main`.
    pub fn finish(self) {
        if let Some(path) = &self.trace_path {
            let tracer = self.tracer.unwrap_or_else(Tracer::enabled);
            match tracer.write_chrome_json(path) {
                Ok(()) => eprintln!(
                    "[obs] wrote {} trace events to {}",
                    tracer.len(),
                    path.display()
                ),
                Err(e) => eprintln!("[obs] failed to write {}: {e}", path.display()),
            }
        }
        if let Some(path) = &self.metrics_path {
            let runs = JsonValue::arr(self.reports.iter().filter_map(|r| {
                r.epochs.as_ref().map(|e| {
                    JsonValue::obj([
                        ("arch", JsonValue::str(r.arch.as_str())),
                        ("app", JsonValue::str(r.app.as_str())),
                        ("label", JsonValue::str(r.label.as_str())),
                        ("epochs", e.to_json()),
                    ])
                })
            }));
            let doc = JsonValue::obj([
                ("bin", JsonValue::str(self.bin)),
                ("epoch_cycles", JsonValue::u64(self.epoch)),
                ("runs", runs),
            ]);
            write_json(path, &doc, "epoch metrics");
        }
        let default_report = self.report_path.is_none()
            && !self.reports.is_empty()
            && std::path::Path::new("results").is_dir();
        let report_path = self
            .report_path
            .clone()
            .or_else(|| default_report.then(|| format!("results/{}.json", self.bin).into()));
        if let Some(path) = report_path {
            let doc = JsonValue::obj([
                ("bin", JsonValue::str(self.bin)),
                (
                    "runs",
                    JsonValue::arr(self.reports.iter().map(|r| r.to_json())),
                ),
            ]);
            write_json(&path, &doc, "run reports");
        }
    }
}

fn write_json(path: &std::path::Path, doc: &JsonValue, what: &str) {
    match std::fs::write(path, doc.render_pretty()) {
        Ok(()) => eprintln!("[obs] wrote {what} to {}", path.display()),
        Err(e) => eprintln!("[obs] failed to write {}: {e}", path.display()),
    }
}

/// The per-app AGG reduced-D ratio of Figure 6 (1/2 for the apps that
/// stress D-nodes, 1/4 otherwise).
pub fn reduced_ratio(app: AppId) -> usize {
    if app.wants_half_ratio() {
        2
    } else {
        4
    }
}

/// The seven machine configurations of Figure 6 for one application, in
/// presentation order: NUMA, COMA at 25/75% pressure, 1/1AGG at 25/75%,
/// and the app's reduced-D AGG at 25/75%.
pub fn fig6_configs(app: AppId) -> Vec<Config> {
    let r = reduced_ratio(app);
    vec![
        Config::Numa,
        Config::Coma { pressure: 0.25 },
        Config::Coma { pressure: 0.75 },
        Config::Agg {
            ratio: 1,
            pressure: 0.25,
        },
        Config::Agg {
            ratio: 1,
            pressure: 0.75,
        },
        Config::Agg {
            ratio: r,
            pressure: 0.25,
        },
        Config::Agg {
            ratio: r,
            pressure: 0.75,
        },
    ]
}

/// Renders a fraction as a padded percentage.
pub fn pct(x: f64) -> String {
    format!("{:5.1}%", x * 100.0)
}

/// Standard thread count for the main comparison (the paper uses 32; a
/// smaller count keeps quick runs fast).
pub fn default_threads() -> usize {
    std::env::var("PIMDSM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

/// Scale selected via `PIMDSM_SCALE` (full / bench / ci), default bench.
pub fn default_scale() -> Scale {
    match std::env::var("PIMDSM_SCALE").as_deref() {
        Ok("full") => Scale::full(),
        Ok("ci") => Scale::ci(),
        _ => Scale::bench(),
    }
}

/// Prints a normalized, two-component bar table in the paper's Figure 6
/// shape.
pub fn print_fig6_block(app: AppId, rows: &[(String, f64, f64)]) {
    let base = rows
        .first()
        .map(|(_, p, m)| p + m)
        .filter(|t| *t > 0.0)
        .unwrap_or(1.0);
    println!("\n== {} (normalized to {}) ==", app.name(), rows[0].0);
    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "config", "Processor", "Memory", "Total"
    );
    for (label, proc_t, mem_t) in rows {
        println!(
            "{:<12} {:>10.3} {:>10.3} {:>10.3}",
            label,
            proc_t / base,
            mem_t / base,
            (proc_t + mem_t) / base
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_style() {
        assert_eq!(Config::Numa.label(), "NUMA");
        assert_eq!(Config::Coma { pressure: 0.25 }.label(), "COMA25");
        assert_eq!(
            Config::Agg {
                ratio: 4,
                pressure: 0.75
            }
            .label(),
            "1/4AGG75"
        );
    }

    #[test]
    fn reduced_ratios_follow_table() {
        assert_eq!(reduced_ratio(AppId::Fft), 2);
        assert_eq!(reduced_ratio(AppId::Radix), 2);
        assert_eq!(reduced_ratio(AppId::Ocean), 2);
        assert_eq!(reduced_ratio(AppId::Barnes), 4);
        assert_eq!(reduced_ratio(AppId::Dbase), 4);
    }

    #[test]
    fn run_config_smoke() {
        let r = run_config(
            AppId::Fft,
            4,
            Scale::ci(),
            Config::Agg {
                ratio: 2,
                pressure: 0.75,
            },
        );
        assert_eq!(r.arch, "AGG");
        assert!(r.total_cycles > 0);
    }
}
