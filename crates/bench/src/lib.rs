//! Thin wrappers regenerating the paper's tables and figures.
//!
//! Each binary in this crate regenerates one table or figure of the
//! evaluation section (see `DESIGN.md` for the experiment index). The
//! run matrices, output formatting, CLI flags, parallel executor and
//! result cache that used to live here all moved to the `pimdsm-lab`
//! crate — a binary is now one [`pimdsm_lab::cli::bin_main`] call, and
//! `pimdsm-lab run <suite>` is the same command with more knobs
//! (`--jobs`, `--cache-dir`, `--scale`, ...).
//!
//! The `benches/` directory (criterion microbenchmarks of the simulator
//! substrates) is unrelated to the figure binaries and stays here.

pub use pimdsm_lab::cli::{bin_main, default_scale, default_threads};
