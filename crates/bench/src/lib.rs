//! Shared harness for regenerating the paper's tables and figures.
//!
//! Each binary in this crate regenerates one table or figure of the
//! evaluation section (see `DESIGN.md` for the experiment index); this
//! library holds the run matrix and formatting they share.

use pimdsm::{ArchSpec, Machine, RunReport};
use pimdsm_workloads::{build, AppId, Scale};

/// The machine configurations of Figure 6, in presentation order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Config {
    /// CC-NUMA at a given pressure (pressure only sizes memory; NUMA bars
    /// are pressure-insensitive in the paper and plotted once).
    Numa,
    /// Flat COMA at `pressure`.
    Coma {
        /// Memory pressure (0.25 / 0.75).
        pressure: f64,
    },
    /// AGG with a D:P ratio of `1/ratio` at `pressure`.
    Agg {
        /// P-nodes per D-node (1, 2 or 4).
        ratio: usize,
        /// Memory pressure (0.25 / 0.75).
        pressure: f64,
    },
}

impl Config {
    /// Label in the paper's style ("1/4AGG75", "COMA25", "NUMA").
    pub fn label(&self) -> String {
        match self {
            Config::Numa => "NUMA".to_string(),
            Config::Coma { pressure } => format!("COMA{}", (pressure * 100.0) as u32),
            Config::Agg { ratio, pressure } => {
                format!("1/{}AGG{}", ratio, (pressure * 100.0) as u32)
            }
        }
    }

    /// Memory pressure used for sizing.
    pub fn pressure(&self) -> f64 {
        match self {
            Config::Numa => 0.75,
            Config::Coma { pressure } | Config::Agg { pressure, .. } => *pressure,
        }
    }
}

/// Runs one application under one configuration.
pub fn run_config(app: AppId, threads: usize, scale: Scale, config: Config) -> RunReport {
    let workload = build(app, threads, scale);
    let spec = match config {
        Config::Numa => ArchSpec::Numa,
        Config::Coma { .. } => ArchSpec::Coma,
        Config::Agg { ratio, .. } => ArchSpec::Agg {
            n_d: (threads / ratio).max(1),
        },
    };
    let mut machine =
        Machine::build(spec, workload, config.pressure()).with_label(config.label());
    machine.run()
}

/// The per-app AGG reduced-D ratio of Figure 6 (1/2 for the apps that
/// stress D-nodes, 1/4 otherwise).
pub fn reduced_ratio(app: AppId) -> usize {
    if app.wants_half_ratio() {
        2
    } else {
        4
    }
}

/// The seven machine configurations of Figure 6 for one application, in
/// presentation order: NUMA, COMA at 25/75% pressure, 1/1AGG at 25/75%,
/// and the app's reduced-D AGG at 25/75%.
pub fn fig6_configs(app: AppId) -> Vec<Config> {
    let r = reduced_ratio(app);
    vec![
        Config::Numa,
        Config::Coma { pressure: 0.25 },
        Config::Coma { pressure: 0.75 },
        Config::Agg {
            ratio: 1,
            pressure: 0.25,
        },
        Config::Agg {
            ratio: 1,
            pressure: 0.75,
        },
        Config::Agg {
            ratio: r,
            pressure: 0.25,
        },
        Config::Agg {
            ratio: r,
            pressure: 0.75,
        },
    ]
}

/// Renders a fraction as a padded percentage.
pub fn pct(x: f64) -> String {
    format!("{:5.1}%", x * 100.0)
}

/// Standard thread count for the main comparison (the paper uses 32; a
/// smaller count keeps quick runs fast).
pub fn default_threads() -> usize {
    std::env::var("PIMDSM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

/// Scale selected via `PIMDSM_SCALE` (full / bench / ci), default bench.
pub fn default_scale() -> Scale {
    match std::env::var("PIMDSM_SCALE").as_deref() {
        Ok("full") => Scale::full(),
        Ok("ci") => Scale::ci(),
        _ => Scale::bench(),
    }
}

/// Prints a normalized, two-component bar table in the paper's Figure 6
/// shape.
pub fn print_fig6_block(app: AppId, rows: &[(String, f64, f64)]) {
    let base = rows
        .first()
        .map(|(_, p, m)| p + m)
        .filter(|t| *t > 0.0)
        .unwrap_or(1.0);
    println!("\n== {} (normalized to {}) ==", app.name(), rows[0].0);
    println!("{:<12} {:>10} {:>10} {:>10}", "config", "Processor", "Memory", "Total");
    for (label, proc_t, mem_t) in rows {
        println!(
            "{:<12} {:>10.3} {:>10.3} {:>10.3}",
            label,
            proc_t / base,
            mem_t / base,
            (proc_t + mem_t) / base
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_style() {
        assert_eq!(Config::Numa.label(), "NUMA");
        assert_eq!(Config::Coma { pressure: 0.25 }.label(), "COMA25");
        assert_eq!(
            Config::Agg {
                ratio: 4,
                pressure: 0.75
            }
            .label(),
            "1/4AGG75"
        );
    }

    #[test]
    fn reduced_ratios_follow_table() {
        assert_eq!(reduced_ratio(AppId::Fft), 2);
        assert_eq!(reduced_ratio(AppId::Radix), 2);
        assert_eq!(reduced_ratio(AppId::Ocean), 2);
        assert_eq!(reduced_ratio(AppId::Barnes), 4);
        assert_eq!(reduced_ratio(AppId::Dbase), 4);
    }

    #[test]
    fn run_config_smoke() {
        let r = run_config(
            AppId::Fft,
            4,
            Scale::ci(),
            Config::Agg {
                ratio: 2,
                pressure: 0.75,
            },
        );
        assert_eq!(r.arch, "AGG");
        assert!(r.total_cycles > 0);
    }
}
