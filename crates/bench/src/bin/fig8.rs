//! Regenerates Figure 8: D-node memory utilization by line state.
//!
//! Thin wrapper over the `fig8` suite: the run matrix, parallel
//! executor, result cache and renderer all live in `pimdsm-lab`
//! (`pimdsm-lab run fig8` is the same command with more knobs).

fn main() -> std::process::ExitCode {
    pimdsm_lab::cli::bin_main("fig8")
}
