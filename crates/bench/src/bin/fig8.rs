//! Regenerates Figure 8: D-node memory utilization — the classification
//! of every mapped line as Dirty-in-P-Node, Shared-in-P-Node, or
//! D-Node-Only, at 75/50/25% memory pressure, normalized so the total
//! D-node storage is 100.

use pimdsm::{ArchSpec, Machine};
use pimdsm_bench::{default_scale, default_threads, reduced_ratio, Obs};
use pimdsm_workloads::{build, ALL_APPS};

fn main() {
    let mut obs = Obs::from_args("fig8");
    let threads = default_threads();
    let scale = default_scale();
    println!("Figure 8: state of memory lines, normalized to D-node storage = 100");
    println!(
        "{:<8} {:<6} {:>10} {:>11} {:>10} {:>9} {:>8}",
        "appl.", "press", "DirtyInP", "SharedInP", "DNodeOnly", "OnDisk", "Unused"
    );
    for app in ALL_APPS {
        for pressure in [0.75, 0.5, 0.25] {
            let n_d = (threads / reduced_ratio(app)).max(1);
            let w = build(app, threads, scale);
            let mut m = Machine::build(ArchSpec::Agg { n_d }, w, pressure)
                .with_label(format!("AGG{}", (pressure * 100.0) as u32));
            let r = obs.run_machine(
                &mut m,
                &format!("{}:AGG{}", app.name(), (pressure * 100.0) as u32),
            );
            let c = r.census;
            let norm = |x: u64| 100.0 * x as f64 / c.d_slots.max(1) as f64;
            println!(
                "{:<8} AGG{:<3} {:>10.1} {:>11.1} {:>10.1} {:>9.1} {:>8.1}",
                app.name(),
                (pressure * 100.0) as u32,
                norm(c.dirty_in_p),
                norm(c.shared_in_p),
                norm(c.d_node_only),
                norm(c.paged_out),
                (c.unused_slots() as f64) * 100.0 / c.d_slots.max(1) as f64,
            );
        }
        println!();
    }
    println!("(DirtyInP lines keep no home place holder; SharedInP lines may share their");
    println!(" slot via the SharedList; negative Unused means SharedList slots were reused)");
    obs.finish();
}
