//! Regenerates Figure 7: aggregated read latency by satisfaction level.
//!
//! Thin wrapper over the `fig7` suite: the run matrix, parallel
//! executor, result cache and renderer all live in `pimdsm-lab`
//! (`pimdsm-lab run fig7` is the same command with more knobs).

fn main() -> std::process::ExitCode {
    pimdsm_lab::cli::bin_main("fig7")
}
