//! Regenerates Figure 7: the summed latency of all reads, broken down by
//! the level that satisfied them (FLC / SLC / Memory / 2Hop / 3Hop),
//! normalized to NUMA.

use pimdsm_bench::{default_scale, default_threads, fig6_configs, run_config_obs, Obs};
use pimdsm_proto::Level;
use pimdsm_workloads::ALL_APPS;

fn main() {
    let mut obs = Obs::from_args("fig7");
    let threads = default_threads();
    let scale = default_scale();
    println!("Figure 7: aggregated read latency by satisfaction level, normalized to NUMA\n");
    for app in ALL_APPS {
        println!("== {} ==", app.name());
        println!(
            "{:<12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "config", "FLC", "SLC", "Memory", "2Hop", "3Hop", "Total"
        );
        let mut base = None;
        for cfg in fig6_configs(app) {
            let r = run_config_obs(app, threads, scale, cfg, &mut obs);
            let lat = r.read_latency_by_level();
            let total: u64 = lat.iter().sum();
            let b = *base.get_or_insert(total.max(1)) as f64;
            print!("{:<12}", r.label);
            for l in Level::ALL {
                print!(" {:>8.3}", lat[l.index()] as f64 / b);
            }
            println!(" {:>8.3}", total as f64 / b);
        }
        println!();
    }
    obs.finish();
}
