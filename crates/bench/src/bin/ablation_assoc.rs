//! Regenerates Ablation: attraction-memory associativity and index hashing.
//!
//! Thin wrapper over the `ablation_assoc` suite: the run matrix, parallel
//! executor, result cache and renderer all live in `pimdsm-lab`
//! (`pimdsm-lab run ablation_assoc` is the same command with more knobs).

fn main() -> std::process::ExitCode {
    pimdsm_lab::cli::bin_main("ablation_assoc")
}
