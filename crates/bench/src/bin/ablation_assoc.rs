//! Ablation: P-node attraction-memory organization — associativity and
//! index hashing. The paper uses 4-way set-associative memory caches;
//! this sweep shows how conflict misses (and the write-backs of displaced
//! master lines they trigger) respond to the organization.

use pimdsm::Machine;
use pimdsm_bench::{default_scale, default_threads, Obs};
use pimdsm_mem::CacheCfg;
use pimdsm_workloads::{build, AppId};

fn main() {
    let mut obs = Obs::from_args("ablation_assoc");
    let threads = default_threads();
    let scale = default_scale();
    println!("Ablation: attraction-memory organization (Swim, 1/1 ratio, 75% pressure)\n");
    println!(
        "{:<22} {:>14} {:>12} {:>10}",
        "organization", "total cycles", "write-backs", "2hop"
    );
    for (label, ways, hashed) in [
        ("direct-mapped", 1u32, false),
        ("2-way", 2, false),
        ("4-way (paper)", 4, false),
        ("4-way + hashed index", 4, true),
        ("8-way + hashed index", 8, true),
    ] {
        let w = build(AppId::Swim, threads, scale);
        let mut m = Machine::build_custom_agg(w, 0.75, threads, |cfg| {
            let lines = cfg.p_am.capacity_lines();
            let rounded = lines.div_ceil(ways as u64) * ways as u64;
            let mut am = CacheCfg::new(rounded * 64, ways, 6);
            if hashed {
                am = am.with_hashed_index();
            }
            cfg.p_am = am;
            cfg.p_onchip_lines = rounded / 2;
        })
        .with_label(label);
        let r = obs.run_machine(&mut m, &format!("Swim:{label}"));
        println!(
            "{:<22} {:>14} {:>12} {:>10}",
            label,
            r.total_cycles,
            r.proto.write_backs,
            r.proto.reads_by_level[pimdsm_proto::Level::Hop2.index()]
        );
    }
    obs.finish();
}
