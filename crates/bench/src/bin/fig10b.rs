//! Regenerates Figure 10-(b): computation in memory for Dbase.
//!
//! Thin wrapper over the `fig10b` suite: the run matrix, parallel
//! executor, result cache and renderer all live in `pimdsm-lab`
//! (`pimdsm-lab run fig10b` is the same command with more knobs).

fn main() -> std::process::ExitCode {
    pimdsm_lab::cli::bin_main("fig10b")
}
