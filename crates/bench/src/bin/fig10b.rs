//! Regenerates Figure 10-(b): computation in memory for Dbase. In the
//! Opt variant the D-node processors run the select scans (Section 2.4)
//! and return only matching-record pointers; the P-nodes perform the
//! join. Compared for several P&D combinations.

use pimdsm::{ArchSpec, Machine};
use pimdsm_bench::{default_scale, Obs};
use pimdsm_workloads::build_dbase;

fn main() {
    let mut obs = Obs::from_args("fig10b");
    let scale = default_scale();
    println!("Figure 10-(b): Dbase with computation in memory (AGG, 75% pressure)\n");
    println!(
        "{:<12} {:>14} {:>14} {:>12}",
        "P & D", "Plain", "Opt", "reduction"
    );
    for (p, d) in [(16usize, 16usize), (24, 8), (28, 4)] {
        let mut m = Machine::build(
            ArchSpec::Agg { n_d: d },
            build_dbase(p, p, scale, false),
            0.75,
        )
        .with_label(format!("{p}P&{d}D plain"));
        let plain = obs.run_machine(&mut m, &format!("Dbase:{p}P&{d}D:plain"));
        let mut m = Machine::build(
            ArchSpec::Agg { n_d: d },
            build_dbase(p, p, scale, true),
            0.75,
        )
        .with_label(format!("{p}P&{d}D opt"));
        let opt = obs.run_machine(&mut m, &format!("Dbase:{p}P&{d}D:opt"));
        println!(
            "{:<12} {:>14} {:>14} {:>11.1}%",
            format!("{p}P & {d}D"),
            plain.total_cycles,
            opt.total_cycles,
            100.0 * (1.0 - opt.total_cycles as f64 / plain.total_cycles as f64)
        );
    }
    println!("\n(paper reports ~70% reduction across configurations)");
    obs.finish();
}
