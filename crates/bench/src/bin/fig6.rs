//! Regenerates Figure 6: normalized execution time of the applications on
//! NUMA, COMA and the AGG variants, split into Processor and Memory time.

use pimdsm_bench::{default_scale, default_threads, fig6_configs, run_config_obs, Obs};
use pimdsm_workloads::ALL_APPS;

fn main() {
    let mut obs = Obs::from_args("fig6");
    let threads = default_threads();
    let scale = default_scale();
    println!("Figure 6: execution time normalized to NUMA (Processor / Memory split)");
    println!("{threads} application threads; AGG pressures in the label\n");
    for app in ALL_APPS {
        let mut rows = Vec::new();
        for cfg in fig6_configs(app) {
            let r = run_config_obs(app, threads, scale, cfg, &mut obs);
            rows.push((r.label.clone(), r.processor_time(), r.memory_time()));
        }
        pimdsm_bench::print_fig6_block(app, &rows);
    }
    obs.finish();
}
