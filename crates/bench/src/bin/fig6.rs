//! Regenerates Figure 6: normalized execution time on NUMA, COMA and the AGG variants.
//!
//! Thin wrapper over the `fig6` suite: the run matrix, parallel
//! executor, result cache and renderer all live in `pimdsm-lab`
//! (`pimdsm-lab run fig6` is the same command with more knobs).

fn main() -> std::process::ExitCode {
    pimdsm_lab::cli::bin_main("fig6")
}
