//! Ablation: the fraction of P-node local memory that is on chip. The
//! paper argues the on/off-chip split has only a modest impact because
//! the latency difference (37 vs 57 cycles) is small; this sweep checks
//! that on our simulator.

use pimdsm::Machine;
use pimdsm_bench::{default_scale, default_threads, Obs};
use pimdsm_workloads::{build, AppId};

fn main() {
    let mut obs = Obs::from_args("ablation_onchip");
    let threads = default_threads();
    let scale = default_scale();
    println!("Ablation: on-chip fraction of P-node memory (Swim, 1/1 ratio, 75% pressure)\n");
    println!("{:<12} {:>14} {:>10}", "on-chip", "total cycles", "vs 100%");
    let mut base: Option<u64> = None;
    for pct in [100u64, 50, 25, 0] {
        let w = build(AppId::Swim, threads, scale);
        let mut m = Machine::build_custom_agg(w, 0.75, threads, |cfg| {
            cfg.p_onchip_lines = cfg.p_am.capacity_lines() * pct / 100;
        })
        .with_label(format!("{pct}% on-chip"));
        let r = obs.run_machine(&mut m, &format!("Swim:{pct}%"));
        let b = *base.get_or_insert(r.total_cycles);
        println!(
            "{:<12} {:>14} {:>10.3}",
            format!("{pct}%"),
            r.total_cycles,
            r.total_cycles as f64 / b as f64
        );
    }
    println!(
        "\n(paper: \"the fraction of local memory that is on-chip has only a modest impact\")"
    );
    obs.finish();
}
