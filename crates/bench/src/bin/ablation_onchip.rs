//! Regenerates Ablation: on-chip fraction of P-node local memory.
//!
//! Thin wrapper over the `ablation_onchip` suite: the run matrix, parallel
//! executor, result cache and renderer all live in `pimdsm-lab`
//! (`pimdsm-lab run ablation_onchip` is the same command with more knobs).

fn main() -> std::process::ExitCode {
    pimdsm_lab::cli::bin_main("ablation_onchip")
}
