//! Ablation: the SharedList (Section 2.2.2). With reuse disabled, a
//! D-node that runs out of FreeList slots must page out immediately; with
//! reuse enabled it first reclaims the duplicate copies of shared lines
//! whose mastership lives in a P-node (at the price of 3-hop reads if the
//! line is re-requested).

use pimdsm::Machine;
use pimdsm_bench::{default_scale, default_threads, Obs};
use pimdsm_workloads::{build, AppId};

fn main() {
    let mut obs = Obs::from_args("ablation_sharedlist");
    let threads = default_threads();
    let scale = default_scale();
    println!("Ablation: D-node SharedList reclamation (Barnes, 1/2 ratio, 90% pressure)\n");
    println!(
        "{:<26} {:>14} {:>10} {:>12} {:>10}",
        "policy", "total cycles", "3hop", "page-outs", "faults"
    );
    for (label, reuse) in [
        ("reuse SharedList (paper)", true),
        ("no reuse (page out)", false),
    ] {
        let w = build(AppId::Barnes, threads, scale);
        let mut m = Machine::build_custom_agg(w, 0.9, (threads / 2).max(1), |cfg| {
            cfg.dnode.reuse_shared_list = reuse;
        })
        .with_label(label);
        let r = obs.run_machine(&mut m, &format!("Barnes:{label}"));
        println!(
            "{:<26} {:>14} {:>10} {:>12} {:>10}",
            label,
            r.total_cycles,
            r.proto.reads_by_level[pimdsm_proto::Level::Hop3.index()],
            r.proto.page_outs,
            r.proto.disk_faults
        );
    }
    println!(
        "
(identical rows confirm the paper's Section 4.1 observation: with so many
         dirty-in-P lines freeing their home slots, the SharedList is rarely — here
         never — actually reclaimed, so discouraging its reuse costs nothing)"
    );
    obs.finish();
}
