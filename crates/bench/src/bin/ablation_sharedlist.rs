//! Regenerates Ablation: D-node SharedList reclamation policy.
//!
//! Thin wrapper over the `ablation_sharedlist` suite: the run matrix, parallel
//! executor, result cache and renderer all live in `pimdsm-lab`
//! (`pimdsm-lab run ablation_sharedlist` is the same command with more knobs).

fn main() -> std::process::ExitCode {
    pimdsm_lab::cli::bin_main("ablation_sharedlist")
}
