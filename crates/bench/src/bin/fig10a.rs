//! Regenerates Figure 10-(a): dynamic reconfiguration of Dbase on a
//! 32-node AGG machine. The hash phase runs best at 16P&16D, the join
//! phase at 28P&4D; the dynamic machine switches between them at the
//! phase boundary, paying the paper's reconfiguration overhead model.

use pimdsm::{Machine, ReconfigPlan};
use pimdsm_bench::{default_scale, Obs};
use pimdsm_workloads::build_dbase;

fn main() {
    let mut obs = Obs::from_args("fig10a");
    let scale = default_scale();
    println!("Figure 10-(a): Dbase on a 32-node AGG machine, 75% pressure");
    println!("(every D-capable node carries the paper's 4x \"fatter\" memory, Fig. 2-(b))\n");
    println!(
        "{:<22} {:>14} {:>12} {:>10}",
        "configuration", "total cycles", "vs 16&16", "reconf"
    );

    // Every D-node is a fat node: it holds what a 4-D-node machine needs
    // per node, so the machine can be repartitioned without overflowing
    // the surviving directories.
    let fatten = |n_d: usize| {
        let factor = (16 / n_d.min(16)).max(1) as u64;
        move |cfg: &mut pimdsm_proto::AggCfg| {
            cfg.dnode.data_lines *= factor;
            cfg.dnode.onchip_lines *= factor;
        }
    };

    // Static 16P & 16D.
    let w = build_dbase(16, 16, scale, false);
    let mut m = Machine::build_custom_agg(w, 0.75, 16, fatten(16)).with_label("static 16P&16D");
    let r_16 = obs.run_machine(&mut m, "Dbase:static16&16");
    println!(
        "{:<22} {:>14} {:>12} {:>10}",
        "static 16P & 16D", r_16.total_cycles, "1.000", "-"
    );

    // Static 28P & 4D.
    let w = build_dbase(28, 28, scale, false);
    let mut m = Machine::build_custom_agg(w, 0.75, 4, fatten(4)).with_label("static 28P&4D");
    let r_28 = obs.run_machine(&mut m, "Dbase:static28&4");
    println!(
        "{:<22} {:>14} {:>12.3} {:>10}",
        "static 28P & 4D",
        r_28.total_cycles,
        r_28.total_cycles as f64 / r_16.total_cycles as f64,
        "-"
    );

    // Dynamic: hash at 16&16, reconfigure to 28&4 for the join.
    let w = build_dbase(16, 28, scale, false);
    let mut m =
        Machine::build_custom_agg(w, 0.75, 16, fatten(16)).with_label("dynamic 16&16->28&4");
    m.set_reconfig(ReconfigPlan::paper(28, 4));
    let r_dyn = obs.run_machine(&mut m, "Dbase:dynamic");
    println!(
        "{:<22} {:>14} {:>12.3} {:>10}",
        "dynamic 16&16 -> 28&4",
        r_dyn.total_cycles,
        r_dyn.total_cycles as f64 / r_16.total_cycles as f64,
        r_dyn.reconfig_cycles
    );

    let best_static = r_16.total_cycles.min(r_28.total_cycles);
    let gain = 100.0 * (1.0 - r_dyn.total_cycles as f64 / best_static as f64);
    println!(
        "\ndynamic reconfiguration vs best static: {gain:+.1}% \
         (paper reports a 14% reduction)"
    );
    obs.finish();
}
