//! Regenerates Figure 10-(a): dynamic reconfiguration of Dbase.
//!
//! Thin wrapper over the `fig10a` suite: the run matrix, parallel
//! executor, result cache and renderer all live in `pimdsm-lab`
//! (`pimdsm-lab run fig10a` is the same command with more knobs).

fn main() -> std::process::ExitCode {
    pimdsm_lab::cli::bin_main("fig10a")
}
