//! Ablation: sensitivity to the software protocol-handler cost (Table 2
//! scaled by a factor). The paper assumes hardware controllers run at 70%
//! of the software cost; this sweep shows how much the software-handler
//! choice actually costs AGG on a D-node-intensive application.

use pimdsm::Machine;
use pimdsm_bench::{default_scale, default_threads, Obs};
use pimdsm_workloads::{build, AppId};

fn main() {
    let mut obs = Obs::from_args("ablation_handlers");
    let threads = default_threads();
    let scale = default_scale();
    println!("Ablation: AGG handler-cost sensitivity (Dbase, 1/2 ratio, 75% pressure)\n");
    println!("{:<10} {:>14} {:>10}", "factor", "total cycles", "vs 0.7x");
    let mut base: Option<u64> = None;
    for factor in [0.7, 1.0, 1.5, 2.0] {
        let w = build(AppId::Dbase, threads, scale);
        let mut m = Machine::build_custom_agg(w, 0.75, (threads / 2).max(1), |cfg| {
            cfg.handler = cfg.handler.scaled(factor);
        })
        .with_label(format!("{factor:.1}x"));
        let r = obs.run_machine(&mut m, &format!("Dbase:{factor:.1}x"));
        let b = *base.get_or_insert(r.total_cycles);
        println!(
            "{:<10} {:>14} {:>10.3}",
            format!("{factor:.1}x"),
            r.total_cycles,
            r.total_cycles as f64 / b as f64
        );
    }
    println!("\n(0.7x is the hardware-controller cost the paper grants NUMA and COMA)");
    obs.finish();
}
