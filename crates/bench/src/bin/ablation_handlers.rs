//! Regenerates Ablation: software protocol-handler cost sensitivity.
//!
//! Thin wrapper over the `ablation_handlers` suite: the run matrix, parallel
//! executor, result cache and renderer all live in `pimdsm-lab`
//! (`pimdsm-lab run ablation_handlers` is the same command with more knobs).

fn main() -> std::process::ExitCode {
    pimdsm_lab::cli::bin_main("ablation_handlers")
}
