//! Regenerates Figure 9: execution time across the (#P, #D) design space.
//!
//! Thin wrapper over the `fig9` suite: the run matrix, parallel
//! executor, result cache and renderer all live in `pimdsm-lab`
//! (`pimdsm-lab run fig9` is the same command with more knobs).

fn main() -> std::process::ExitCode {
    pimdsm_lab::cli::bin_main("fig9")
}
