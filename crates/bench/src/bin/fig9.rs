//! Regenerates Figure 9: execution time across the (#P, #D) design space
//! for each application, with problem size and total D-memory held fixed
//! (static reconfigurability, Section 4.2).

use pimdsm::{config, ArchSpec, Machine};
use pimdsm_bench::{default_scale, Obs};
use pimdsm_workloads::{build, ALL_APPS};

fn main() {
    let mut obs = Obs::from_args("fig9");
    let scale = default_scale();
    let p_counts = [2usize, 4, 8, 16, 32];
    let d_counts = [2usize, 4, 8, 16];
    println!("Figure 9: execution time (cycles) across P- and D-node counts");
    println!("problem size and total D-memory fixed (sized at 2P&2D, AGG75)\n");
    for app in ALL_APPS {
        // Size the fixed total D-memory and per-P memory from the 2P&2D
        // reference configuration at 75% pressure.
        let reference = build(app, 2, scale);
        let ref_cfg = config::resolve(&*reference, 0.75);
        let total_d_lines = ref_cfg.total_mem_lines / 2;
        let p_am_lines = ref_cfg.total_mem_lines / 2 / 2;

        println!("== {} (rows: #P, cols: #D) ==", app.name());
        print!("{:>6}", "");
        for &d in &d_counts {
            print!(" {d:>12}");
        }
        println!();
        for &p in &p_counts {
            print!("{p:>6}");
            for &d in &d_counts {
                if p + d > 64 {
                    print!(" {:>12}", "-");
                    continue;
                }
                let w = build(app, p, scale);
                let mut m = Machine::build(
                    ArchSpec::AggExplicit {
                        n_d: d,
                        p_am_lines,
                        d_data_lines: (total_d_lines / d as u64).max(512),
                    },
                    w,
                    0.75,
                )
                .with_label(format!("{p}P&{d}D"));
                let r = obs.run_machine(&mut m, &format!("{}:{}P&{}D", app.name(), p, d));
                print!(" {:>12}", r.total_cycles);
            }
            println!();
        }
        println!();
    }
    obs.finish();
}
