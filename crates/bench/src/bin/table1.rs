//! Regenerates Table 1: architectural parameters — uncontended round-trip
//! latencies, paper vs. measured on this simulator.

use pimdsm::calibration::{measure, PAPER};
use pimdsm_bench::Obs;

fn main() {
    let obs = Obs::from_args("table1");
    let m = measure();
    println!("Table 1: uncontended round-trip latencies (CPU cycles)");
    println!("{:<28} {:>8} {:>10}", "device", "paper", "measured");
    let rows = [
        ("On-Chip L1", PAPER.l1, m.l1),
        ("On-Chip L2", PAPER.l2, m.l2),
        ("Local memory, on-chip", PAPER.mem_on, m.mem_on),
        ("Local memory, off-chip", PAPER.mem_off, m.mem_off),
        ("Remote memory, 2-node hop", PAPER.hop2, m.hop2),
        ("Remote memory, 3-node hop", PAPER.hop3, m.hop3),
    ];
    for (name, paper, measured) in rows {
        let delta = 100.0 * (measured as f64 - paper as f64) / paper as f64;
        println!("{name:<28} {paper:>8} {measured:>10}   ({delta:+.1}%)");
    }
    obs.finish();
}
