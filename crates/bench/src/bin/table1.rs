//! Regenerates Table 1: uncontended round-trip latencies, paper vs. measured.
//!
//! Thin wrapper over the `table1` suite: the run matrix, parallel
//! executor, result cache and renderer all live in `pimdsm-lab`
//! (`pimdsm-lab run table1` is the same command with more knobs).

fn main() -> std::process::ExitCode {
    pimdsm_lab::cli::bin_main("table1")
}
