//! Regenerates Table 3: the applications, their paper problem sizes, their
//! cache configurations, and the scaled sizes this harness actually runs.

use pimdsm_bench::{default_scale, default_threads, Obs};
use pimdsm_workloads::{build, ALL_APPS};

fn main() {
    let obs = Obs::from_args("table3");
    let scale = default_scale();
    let threads = default_threads();
    println!("Table 3: applications (scaled footprints at the current scale, {threads} threads)");
    println!(
        "{:<8} {:<48} {:>9} {:>12}",
        "appl.", "description & problem size (paper)", "L1,L2 KB", "scaled fp"
    );
    for app in ALL_APPS {
        let (l1, l2) = app.cache_kb();
        let w = build(app, threads, scale);
        println!(
            "{:<8} {:<48} {:>4},{:<4} {:>9} KiB",
            app.name(),
            app.description(),
            l1,
            l2,
            w.footprint_bytes() / 1024
        );
    }
    println!(
        "\n(paper problem sizes are scaled by 1/{} and iteration counts by 1/{};",
        scale.size_div, scale.iter_div
    );
    println!(
        " memory pressure is preserved because machine DRAM is sized from the scaled footprint)"
    );
    obs.finish();
}
