//! Regenerates Table 3: applications and scaled problem sizes.
//!
//! Thin wrapper over the `table3` suite: the run matrix, parallel
//! executor, result cache and renderer all live in `pimdsm-lab`
//! (`pimdsm-lab run table3` is the same command with more knobs).

fn main() -> std::process::ExitCode {
    pimdsm_lab::cli::bin_main("table3")
}
