//! Regenerates Table 2: protocol handler costs.
//!
//! Thin wrapper over the `table2` suite: the run matrix, parallel
//! executor, result cache and renderer all live in `pimdsm-lab`
//! (`pimdsm-lab run table2` is the same command with more knobs).

fn main() -> std::process::ExitCode {
    pimdsm_lab::cli::bin_main("table2")
}
