//! Regenerates Table 2: latency and occupancy of the major protocol
//! handlers, for the AGG software implementation and the hardware
//! controllers of NUMA/COMA (70% of software, per Section 3).

use pimdsm_bench::Obs;
use pimdsm_proto::{ControllerKind, HandlerCosts, HandlerKind};

fn main() {
    let obs = Obs::from_args("table2");
    println!("Table 2: protocol handler costs (processor cycles)");
    for (label, kind) in [
        (
            "AGG (software handlers on D-node processors)",
            ControllerKind::Software,
        ),
        (
            "NUMA/COMA (custom hardware controllers, 70%)",
            ControllerKind::Hardware,
        ),
    ] {
        let c = HandlerCosts::paper(kind);
        println!("\n{label}");
        println!("{:<18} {:>8} {:>22}", "handler", "latency", "occupancy");
        let (l, o) = c.cost(HandlerKind::Read, 0);
        println!("{:<18} {:>8} {:>22}", "Read", l, o);
        let (l, o) = c.cost(HandlerKind::ReadExclusive, 0);
        println!(
            "{:<18} {:>8} {:>14} + {}/inval",
            "Read Exclusive", l, o, c.per_inval
        );
        let (l, o) = c.cost(HandlerKind::Acknowledgment, 0);
        println!("{:<18} {:>8} {:>22}", "Acknowledgment", l, o);
        let (l, o) = c.cost(HandlerKind::WriteBack, 0);
        println!("{:<18} {:>8} {:>22}", "Write Back", l, o);
    }
    obs.finish();
}
