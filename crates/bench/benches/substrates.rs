//! Micro-benchmarks of the simulation substrates: how fast the simulator
//! itself runs (host time), independent of any simulated workload.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pimdsm_engine::{EventQueue, SimRng, Timeline, Zipf};
use pimdsm_mem::{CacheCfg, KeyedQueue, SetAssocCache};
use pimdsm_net::{Mesh, NetCfg, Network};

fn engine(c: &mut Criterion) {
    c.bench_function("engine/timeline_acquire", |b| {
        let mut t = Timeline::new();
        let mut at = 0u64;
        b.iter(|| {
            at += 7;
            black_box(t.acquire(black_box(at), 40));
        });
    });

    c.bench_function("engine/event_queue_push_pop", |b| {
        let mut q = EventQueue::new();
        for i in 0..1024u64 {
            q.push(i * 3, i);
        }
        let mut t = 4096u64;
        b.iter(|| {
            let (time, tid) = q.pop().expect("queue never drains");
            t += 11;
            q.push(time + (t % 97), tid);
        });
    });

    c.bench_function("engine/zipf_sample", |b| {
        let z = Zipf::new(4096, 0.9);
        let mut rng = SimRng::new(1);
        b.iter(|| black_box(z.sample(&mut rng)));
    });
}

fn mem(c: &mut Criterion) {
    c.bench_function("mem/cache_get_hit", |b| {
        let mut cache = SetAssocCache::new(CacheCfg::new(1 << 20, 4, 6));
        for l in 0..8192u64 {
            cache.insert(l, l as u32, |_| 0);
        }
        let mut l = 0u64;
        b.iter(|| {
            l = (l + 37) % 8192;
            black_box(cache.get(black_box(l)));
        });
    });

    c.bench_function("mem/cache_insert_evict", |b| {
        let mut cache = SetAssocCache::new(CacheCfg::new(1 << 16, 4, 6).with_hashed_index());
        let mut l = 0u64;
        b.iter(|| {
            l += 1;
            black_box(cache.insert(black_box(l), 0u8, |_| 0));
        });
    });

    c.bench_function("mem/keyed_queue_cycle", |b| {
        let mut q = KeyedQueue::new();
        for i in 0..1024u64 {
            q.push_back(i);
        }
        let mut i = 1024u64;
        b.iter(|| {
            let f = q.pop_front().expect("nonempty");
            black_box(f);
            q.push_back(i);
            i += 1;
        });
    });
}

fn net(c: &mut Criterion) {
    c.bench_function("net/send_8x8", |b| {
        let mut n = Network::new(Mesh::new(8, 8), NetCfg::default());
        let mut t = 0u64;
        let mut from = 0usize;
        b.iter(|| {
            t += 13;
            from = (from + 17) % 64;
            black_box(n.send(from, (from + 31) % 64, 80, t));
        });
    });
}

criterion_group!(benches, engine, mem, net);
criterion_main!(benches);
