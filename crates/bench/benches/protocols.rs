//! Micro-benchmarks of the three coherence protocols: host-time cost of
//! one simulated memory transaction on each memory system.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pimdsm_proto::{AggCfg, AggSystem, ComaCfg, ComaSystem, MemSystem, NumaCfg, NumaSystem};

fn numa(c: &mut Criterion) {
    c.bench_function("proto/numa_read_stream", |b| {
        let mut sys = NumaSystem::new(NumaCfg::paper(16, 8, 32, 1 << 16));
        let mut addr = 0u64;
        let mut t = 0u64;
        b.iter(|| {
            addr += 64;
            t += 50;
            black_box(sys.read(black_box((addr as usize / 64) % 16), addr, t));
        });
    });
}

fn coma(c: &mut Criterion) {
    c.bench_function("proto/coma_read_stream", |b| {
        let mut sys = ComaSystem::new(ComaCfg::paper(16, 8, 32, 1 << 16));
        let mut addr = 0u64;
        let mut t = 0u64;
        b.iter(|| {
            addr += 64;
            t += 50;
            black_box(sys.read(black_box((addr as usize / 64) % 16), addr, t));
        });
    });
}

fn agg(c: &mut Criterion) {
    c.bench_function("proto/agg_read_stream", |b| {
        let mut sys = AggSystem::new(AggCfg::paper(16, 16, 8, 32, 1 << 16, 1 << 16));
        let p_nodes: Vec<usize> = sys.p_nodes().to_vec();
        let mut addr = 0u64;
        let mut t = 0u64;
        b.iter(|| {
            addr += 64;
            t += 50;
            let p = p_nodes[(addr as usize / 64) % p_nodes.len()];
            black_box(sys.read(black_box(p), addr, t));
        });
    });

    c.bench_function("proto/agg_write_stream", |b| {
        let mut sys = AggSystem::new(AggCfg::paper(16, 16, 8, 32, 1 << 16, 1 << 16));
        let p_nodes: Vec<usize> = sys.p_nodes().to_vec();
        let mut addr = 1 << 30;
        let mut t = 0u64;
        b.iter(|| {
            addr += 64;
            t += 50;
            let p = p_nodes[(addr as usize / 64) % p_nodes.len()];
            black_box(sys.write(black_box(p), addr, t));
        });
    });
}

criterion_group!(benches, numa, coma, agg);
criterion_main!(benches);
