//! End-to-end benchmarks: host time to simulate one complete application
//! run on each architecture at CI scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pimdsm::{ArchSpec, Machine};
use pimdsm_workloads::{build, AppId, Scale};

fn run(spec: ArchSpec, app: AppId) -> u64 {
    let w = build(app, 8, Scale::ci());
    let mut m = Machine::build(spec, w, 0.75);
    m.run().total_cycles
}

fn end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    for (name, spec) in [
        ("numa", ArchSpec::Numa),
        ("coma", ArchSpec::Coma),
        ("agg_1_1", ArchSpec::Agg { n_d: 8 }),
        ("agg_1_4", ArchSpec::Agg { n_d: 2 }),
    ] {
        g.bench_function(format!("fft_{name}"), |b| {
            b.iter(|| black_box(run(spec, AppId::Fft)));
        });
    }
    g.bench_function("dbase_agg_offload", |b| {
        b.iter(|| {
            let w = pimdsm_workloads::build_dbase(8, 8, Scale::ci(), true);
            let mut m = Machine::build(ArchSpec::Agg { n_d: 4 }, w, 0.75);
            black_box(m.run().total_cycles)
        });
    });
    g.finish();
}

criterion_group!(benches, end_to_end);
criterion_main!(benches);
