//! Computation in memory (Section 2.4 / Figure 10-(b)) integration tests.

use pimdsm::{ArchSpec, Machine};
use pimdsm_workloads::{build_dbase, Scale};

#[test]
fn offload_reduces_execution_time_on_agg() {
    let plain = Machine::build(
        ArchSpec::Agg { n_d: 4 },
        build_dbase(8, 8, Scale::ci(), false),
        0.75,
    )
    .run();
    let opt = Machine::build(
        ArchSpec::Agg { n_d: 4 },
        build_dbase(8, 8, Scale::ci(), true),
        0.75,
    )
    .run();
    assert!(
        opt.total_cycles < plain.total_cycles,
        "offload must help: {} vs {}",
        opt.total_cycles,
        plain.total_cycles
    );
}

#[test]
fn offload_moves_work_to_d_nodes() {
    let plain = Machine::build(
        ArchSpec::Agg { n_d: 4 },
        build_dbase(8, 8, Scale::ci(), false),
        0.75,
    )
    .run();
    let opt = Machine::build(
        ArchSpec::Agg { n_d: 4 },
        build_dbase(8, 8, Scale::ci(), true),
        0.75,
    )
    .run();
    // The scans now run at the memory: far fewer protocol reads from the
    // P side, higher D-node utilization per cycle.
    assert!(
        opt.proto.total_reads() < plain.proto.total_reads() / 2,
        "P-side reads should collapse: {} vs {}",
        opt.proto.total_reads(),
        plain.proto.total_reads()
    );
    assert!(
        opt.net.bytes < plain.net.bytes,
        "only matching pointers travel: {} vs {} bytes",
        opt.net.bytes,
        plain.net.bytes
    );
}

#[test]
fn offload_falls_back_gracefully_off_agg() {
    // NUMA and COMA have no D-node processors; the op expands to a local
    // scan and the run still completes.
    for spec in [ArchSpec::Numa, ArchSpec::Coma] {
        let r = Machine::build(spec, build_dbase(4, 4, Scale::ci(), true), 0.75).run();
        assert!(r.total_cycles > 0, "{spec:?}");
    }
}
