//! The simulator is deterministic: identical configurations produce
//! bit-identical statistics, across all architectures.

use pimdsm::{ArchSpec, Machine, RunReport};
use pimdsm_workloads::{build, AppId, Scale};

fn run(spec: ArchSpec, app: AppId) -> RunReport {
    Machine::build(spec, build(app, 6, Scale::ci()), 0.75).run()
}

fn assert_identical(a: &RunReport, b: &RunReport, what: &str) {
    assert_eq!(a.total_cycles, b.total_cycles, "{what}: total cycles");
    assert_eq!(
        a.proto.reads_by_level, b.proto.reads_by_level,
        "{what}: read levels"
    );
    assert_eq!(
        a.proto.read_latency_by_level, b.proto.read_latency_by_level,
        "{what}: read latencies"
    );
    assert_eq!(a.net.messages, b.net.messages, "{what}: messages");
    assert_eq!(
        a.net.total_queueing, b.net.total_queueing,
        "{what}: queueing"
    );
    for (x, y) in a.threads.iter().zip(&b.threads) {
        assert_eq!(x, y, "{what}: thread accounting");
    }
}

#[test]
fn numa_runs_are_reproducible() {
    assert_identical(
        &run(ArchSpec::Numa, AppId::Radix),
        &run(ArchSpec::Numa, AppId::Radix),
        "NUMA/Radix",
    );
}

#[test]
fn coma_runs_are_reproducible() {
    assert_identical(
        &run(ArchSpec::Coma, AppId::Barnes),
        &run(ArchSpec::Coma, AppId::Barnes),
        "COMA/Barnes",
    );
}

#[test]
fn agg_runs_are_reproducible() {
    assert_identical(
        &run(ArchSpec::Agg { n_d: 3 }, AppId::Dbase),
        &run(ArchSpec::Agg { n_d: 3 }, AppId::Dbase),
        "AGG/Dbase",
    );
}

#[test]
fn census_is_reproducible() {
    let a = run(ArchSpec::Agg { n_d: 2 }, AppId::Ocean).census;
    let b = run(ArchSpec::Agg { n_d: 2 }, AppId::Ocean).census;
    assert_eq!(a, b);
}

/// The Figure 10-(a) shape at CI scale: a fattened AGG machine running
/// Dbase with a dynamic reconfiguration at the hash/join phase boundary.
/// The D-to-P conversion sweeps pages and directory entries, which
/// historically iterated `HashMap`s — the one nondeterminism that leaked
/// into simulated time. Guard the whole path bit-exactly.
fn run_dynamic_reconfig() -> (RunReport, Vec<pimdsm_obs::TraceEvent>) {
    use pimdsm::ReconfigPlan;
    use pimdsm_obs::Tracer;
    use pimdsm_workloads::build_dbase;

    // 4 hash threads at 4P&4D, reconfiguring to 6P&2D for the 6-thread
    // join — every D-capable node carries 4x "fatter" memory, as in the
    // paper's Fig. 2-(b).
    let w = build_dbase(4, 6, Scale::ci(), false);
    let mut m = pimdsm::Machine::build_custom_agg(w, 0.75, 4, |cfg| {
        cfg.dnode.data_lines *= 4;
        cfg.dnode.onchip_lines *= 4;
    });
    m.set_reconfig(ReconfigPlan::paper(6, 2))
        .expect("dbase has a reconfiguration point");
    let tracer = Tracer::enabled();
    m.attach_tracer(tracer.clone());
    let report = m.run();
    (report, tracer.events_sorted())
}

/// Runs one lab suite point twice (fresh machine each time, tracer
/// attached) and asserts the full report JSON and the exact trace-event
/// sequence are byte-identical — the dynamic guard behind lint rule D001.
fn assert_suite_point_deterministic(suite: &str, label_substr: &str) {
    use pimdsm_lab::{find, SuiteCtx};
    use pimdsm_obs::{ToJson, Tracer};

    let ctx = SuiteCtx {
        threads: 4,
        scale: Scale::ci(),
    };
    let points = find(suite).expect("suite exists").points(&ctx);
    let point = points
        .iter()
        .find(|p| p.label.contains(label_substr))
        .unwrap_or_else(|| panic!("{suite} has a point labelled *{label_substr}*"));

    let run = || {
        let mut m = point.build_machine();
        let tracer = Tracer::enabled();
        m.attach_tracer(tracer.clone());
        (m.run(), tracer.events_sorted())
    };
    let (ra, ea) = run();
    let (rb, eb) = run();
    let what = point.key();
    assert_identical(&ra, &rb, &what);
    assert_eq!(
        ra.to_json().render_pretty(),
        rb.to_json().render_pretty(),
        "{what}: full report must be byte-identical"
    );
    assert_eq!(ea, eb, "{what}: exact event sequences must be equal");
}

/// An AGG point from the Figure 6 sweep stays bit-deterministic (the
/// fig10a guard below only exercises the NUMA/reconfig path).
#[test]
fn agg_suite_point_is_bit_deterministic() {
    assert_suite_point_deterministic("fig6", "1/2AGG75");
}

/// A COMA point from the Figure 6 sweep stays bit-deterministic.
#[test]
fn coma_suite_point_is_bit_deterministic() {
    assert_suite_point_deterministic("fig6", "COMA75");
}

/// Runs one suite point bare and once more under active profiling (a
/// counter scope plus an entered phase) and asserts the simulation output
/// is byte-identical: the profiler observes the host, never the simulated
/// machine. Also checks the observation actually happened — the scope
/// must have counted events and walks.
fn assert_profiling_does_not_perturb(suite: &str, label_substr: &str) {
    use pimdsm_lab::{find, SuiteCtx};
    use pimdsm_obs::{ToJson, Tracer};

    let ctx = SuiteCtx {
        threads: 4,
        scale: Scale::ci(),
    };
    let points = find(suite).expect("suite exists").points(&ctx);
    let point = points
        .iter()
        .find(|p| p.label.contains(label_substr))
        .unwrap_or_else(|| panic!("{suite} has a point labelled *{label_substr}*"));
    let run = || {
        let mut m = point.build_machine();
        let tracer = Tracer::enabled();
        m.attach_tracer(tracer.clone());
        (m.run(), tracer.events_sorted())
    };

    let (ra, ea) = run();
    let ((rb, eb), delta) = pimdsm_prof::counters::scoped(|| {
        pimdsm_prof::phase!("point.run");
        run()
    });
    let what = point.key();
    assert!(
        delta.engine_events() > 0 && delta.txn_walks() > 0,
        "{what}: the profiled run must actually have been counted: {delta:?}"
    );
    assert_eq!(
        ra.to_json().render_pretty(),
        rb.to_json().render_pretty(),
        "{what}: profiling must not change the report"
    );
    assert_eq!(
        ea, eb,
        "{what}: profiling must not change the exact event sequence"
    );
}

/// Profiling an AGG point changes nothing in its simulated output.
#[test]
fn profiled_agg_point_is_unperturbed() {
    assert_profiling_does_not_perturb("fig6", "1/2AGG75");
}

/// Profiling a COMA point changes nothing in its simulated output.
#[test]
fn profiled_coma_point_is_unperturbed() {
    assert_profiling_does_not_perturb("fig6", "COMA75");
}

/// The deterministic counter block of a bench (engine events, queue
/// peak, txn walks/steps) is identical across repeated measured runs.
/// Allocation deltas are asserted by the `bench` CLI itself, where no
/// sibling test threads allocate concurrently.
#[test]
fn bench_counters_are_run_stable() {
    use pimdsm_lab::{find, measure_suite, SuiteCtx};

    let ctx = SuiteCtx {
        threads: 4,
        scale: Scale::ci(),
    };
    let r = measure_suite(find("smoke").expect("smoke suite"), &ctx, 2, 2, false)
        .expect("smoke bench runs");
    assert_eq!(
        r.samples[0].counters, r.samples[1].counters,
        "deterministic bench counters must not vary between runs"
    );
    assert!(r.samples[0].counters.engine_events() > 0);
}

/// A kill + checkpoint + rejoin plan on an AGG machine: recovery sweeps
/// directory entries, re-homes pages and re-binds threads — all paths
/// that must stay bit-exact for the fault suite to be cacheable at all.
fn run_faulted() -> (RunReport, Vec<pimdsm_obs::TraceEvent>) {
    use pimdsm_faults::{Durability, FaultPlan};
    use pimdsm_obs::Tracer;

    let w = build(AppId::Radix, 6, Scale::ci());
    let mut m = Machine::build(ArchSpec::Agg { n_d: 3 }, w, 0.75);
    m.set_faults(
        FaultPlan::new()
            .kill_at(1, 10_000)
            .rejoin_at(1, 30_000)
            .with_durability(Durability::Checkpoint { interval: 5_000 }),
    );
    let tracer = Tracer::enabled();
    m.attach_tracer(tracer.clone());
    (m.run(), tracer.events_sorted())
}

#[test]
fn fault_injection_is_bit_deterministic() {
    use pimdsm_obs::ToJson;

    let (ra, ea) = run_faulted();
    let (rb, eb) = run_faulted();
    let rs = ra.faults.as_ref().expect("faulted run carries stats");
    assert_eq!(rs.kills, 1, "the kill actually fired");
    assert!(
        ea.iter().any(|e| e.name == "kill") && ea.iter().any(|e| e.name == "recovery"),
        "the kill and the recovery span were traced"
    );
    assert_eq!(
        ra.to_json().render_pretty(),
        rb.to_json().render_pretty(),
        "faulted run: full report must be byte-identical"
    );
    assert_eq!(ea, eb, "faulted run: exact event sequences must be equal");
}

/// Every fault scenario the fig-fault suite sweeps stays bit-exact when
/// rebuilt from its declarative spec (covering the lab's FaultSpec →
/// FaultPlan expansion on each architecture).
#[test]
fn agg_fault_suite_point_is_bit_deterministic() {
    assert_suite_point_deterministic("fig-fault", "1/1AGG75 kill+rejoin");
}

#[test]
fn coma_fault_suite_point_is_bit_deterministic() {
    assert_suite_point_deterministic("fig-fault", "COMA75 kill+repl");
}

#[test]
fn numa_fault_suite_point_is_bit_deterministic() {
    assert_suite_point_deterministic("fig-fault", "NUMA kill+ckpt");
}

/// The whole fig-fault sweep — epoch-sampled, as the CLI runs it — is
/// byte-identical whatever the worker count.
#[test]
fn fault_suite_sweep_is_jobs_invariant() {
    use pimdsm_lab::{find, run_sweep, Instrumentation, SuiteCtx};
    use pimdsm_obs::ToJson;

    let ctx = SuiteCtx {
        threads: 4,
        scale: Scale::ci(),
    };
    let suite = find("fig-fault").expect("fault suite exists");
    let inst = Instrumentation {
        epoch: suite.epoch,
        ..Default::default()
    };
    let rendered = |jobs| {
        let result = run_sweep(suite.points(&ctx), None, &inst, jobs, false);
        let reports = result.reports().expect("every fault point succeeds");
        let json: Vec<String> = reports
            .iter()
            .map(|r| r.to_json().render_pretty())
            .collect();
        (suite.render(&ctx, &reports), json)
    };
    assert_eq!(
        rendered(1),
        rendered(4),
        "--jobs must not change any fig-fault byte"
    );
}

/// Service points rebuild and re-run bit-exactly: the Zipf draws, the
/// open-loop arrival schedule and the request brackets are all seeded
/// from the spec, never from ambient state.
#[test]
fn kv_svc_suite_point_is_bit_deterministic() {
    assert_suite_point_deterministic("fig-svc", "1/1AGG75 kv-open");
}

#[test]
fn bfs_svc_suite_point_is_bit_deterministic() {
    assert_suite_point_deterministic("fig-svc", "COMA75 bfs");
}

/// The whole fig-svc sweep is byte-identical whatever the worker count.
#[test]
fn svc_suite_sweep_is_jobs_invariant() {
    use pimdsm_lab::{find, run_sweep, Instrumentation, SuiteCtx};
    use pimdsm_obs::ToJson;

    let ctx = SuiteCtx {
        threads: 4,
        scale: Scale::ci(),
    };
    let suite = find("fig-svc").expect("svc suite exists");
    let inst = Instrumentation::default();
    let rendered = |jobs| {
        let result = run_sweep(suite.points(&ctx), None, &inst, jobs, false);
        let reports = result.reports().expect("every svc point succeeds");
        let json: Vec<String> = reports
            .iter()
            .map(|r| r.to_json().render_pretty())
            .collect();
        (suite.render(&ctx, &reports), json)
    };
    assert_eq!(
        rendered(1),
        rendered(4),
        "--jobs must not change any fig-svc byte"
    );
}

#[test]
fn dynamic_reconfiguration_is_bit_deterministic() {
    use pimdsm_obs::ToJson;

    let (ra, ea) = run_dynamic_reconfig();
    let (rb, eb) = run_dynamic_reconfig();
    assert!(ra.reconfig_cycles > 0, "the machine actually reconfigured");
    assert!(
        ea.iter().any(|e| e.name == "reconfig"),
        "the reconfiguration span was traced"
    );
    assert_identical(&ra, &rb, "AGG/Dbase dynamic reconfig");
    assert_eq!(ra.census, rb.census, "dynamic reconfig: census");
    assert_eq!(
        ra.to_json().render_pretty(),
        rb.to_json().render_pretty(),
        "dynamic reconfig: full report must be byte-identical"
    );
    assert_eq!(ea.len(), eb.len(), "dynamic reconfig: event count");
    assert_eq!(
        ea, eb,
        "dynamic reconfig: exact event sequences must be equal"
    );
}
