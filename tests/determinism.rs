//! The simulator is deterministic: identical configurations produce
//! bit-identical statistics, across all architectures.

use pimdsm::{ArchSpec, Machine, RunReport};
use pimdsm_workloads::{build, AppId, Scale};

fn run(spec: ArchSpec, app: AppId) -> RunReport {
    Machine::build(spec, build(app, 6, Scale::ci()), 0.75).run()
}

fn assert_identical(a: &RunReport, b: &RunReport, what: &str) {
    assert_eq!(a.total_cycles, b.total_cycles, "{what}: total cycles");
    assert_eq!(
        a.proto.reads_by_level, b.proto.reads_by_level,
        "{what}: read levels"
    );
    assert_eq!(
        a.proto.read_latency_by_level, b.proto.read_latency_by_level,
        "{what}: read latencies"
    );
    assert_eq!(a.net.messages, b.net.messages, "{what}: messages");
    assert_eq!(
        a.net.total_queueing, b.net.total_queueing,
        "{what}: queueing"
    );
    for (x, y) in a.threads.iter().zip(&b.threads) {
        assert_eq!(x, y, "{what}: thread accounting");
    }
}

#[test]
fn numa_runs_are_reproducible() {
    assert_identical(
        &run(ArchSpec::Numa, AppId::Radix),
        &run(ArchSpec::Numa, AppId::Radix),
        "NUMA/Radix",
    );
}

#[test]
fn coma_runs_are_reproducible() {
    assert_identical(
        &run(ArchSpec::Coma, AppId::Barnes),
        &run(ArchSpec::Coma, AppId::Barnes),
        "COMA/Barnes",
    );
}

#[test]
fn agg_runs_are_reproducible() {
    assert_identical(
        &run(ArchSpec::Agg { n_d: 3 }, AppId::Dbase),
        &run(ArchSpec::Agg { n_d: 3 }, AppId::Dbase),
        "AGG/Dbase",
    );
}

#[test]
fn census_is_reproducible() {
    let a = run(ArchSpec::Agg { n_d: 2 }, AppId::Ocean).census;
    let b = run(ArchSpec::Agg { n_d: 2 }, AppId::Ocean).census;
    assert_eq!(a, b);
}
