//! Allocation budget guard for the hot path.
//!
//! The data-layout work (bucket event queue, slab caches, chunked page
//! table, pooled workload buffers, fixed-capacity node lists) took the
//! steady-state simulation loop to near-zero heap traffic: what remains
//! is machine construction plus a handful of cold-path sweeps. This test
//! pins that property with a *committed ceiling* on the allocation count
//! of one Figure 6 point, so a regression that reintroduces per-event or
//! per-transaction allocation fails CI instead of silently eroding the
//! speedup.
//!
//! This file is its own integration-test binary on purpose: the counting
//! allocator tallies process-wide, and sibling tests allocating on other
//! threads would charge our window. Keep it to a single `#[test]`.

use pimdsm_lab::{find, SuiteCtx};
use pimdsm_workloads::Scale;

/// Committed ceiling on allocation calls for one CI-scale fig6 AGG point
/// (measured ~0.6k after the arena/SoA refactor; the slack covers small
/// legitimate drift, not a per-event regression — this point runs
/// hundreds of thousands of events, so even one allocation per event
/// blows the budget a hundred times over).
const ALLOC_CEILING: u64 = 10_000;

/// Ceiling on allocated bytes for the same point (measured ~1.4 MB).
/// Dominated by the machine's fixed arenas (slab caches, page-table
/// chunks, bucket windows), so it scales with configuration, not with
/// simulated work.
const BYTE_CEILING: u64 = 8 << 20;

#[test]
fn fig6_point_stays_under_the_committed_alloc_budget() {
    if !pimdsm_prof::alloc::counting_enabled() {
        eprintln!("skipped: count-alloc is not linked in");
        return;
    }

    let ctx = SuiteCtx {
        threads: 4,
        scale: Scale::ci(),
    };
    let points = find("fig6").expect("fig6 suite exists").points(&ctx);
    let point = points
        .iter()
        .find(|p| p.label.contains("1/2AGG75"))
        .expect("fig6 has the 1/2AGG75 point");

    // Warm-up run: suite registries, workload tables and other one-time
    // lazy state must not count against the per-point budget.
    let warm = point.build_machine().run();
    assert!(warm.total_cycles > 0, "the warm-up actually simulated");

    let before = pimdsm_prof::alloc::totals();
    let report = point.build_machine().run();
    let after = pimdsm_prof::alloc::totals();

    let allocs = after.allocs - before.allocs;
    let bytes = after.bytes - before.bytes;
    assert_eq!(
        warm.total_cycles, report.total_cycles,
        "both runs simulate the same machine"
    );
    eprintln!("fig6/{}: {allocs} allocs, {bytes} bytes", point.label);
    assert!(
        allocs <= ALLOC_CEILING,
        "one fig6 point made {allocs} allocations (budget {ALLOC_CEILING}): \
         something on the simulation path allocates per event or per \
         transaction again"
    );
    assert!(
        bytes <= BYTE_CEILING,
        "one fig6 point allocated {bytes} bytes (budget {BYTE_CEILING})"
    );
}
