//! Figure 8 (D-node memory utilization) invariants.

use pimdsm::{ArchSpec, Machine};
use pimdsm_proto::Census;
use pimdsm_workloads::{build, AppId, Scale, ALL_APPS};

fn census(app: AppId, pressure: f64) -> Census {
    let w = build(app, 8, Scale::ci());
    let mut m = Machine::build(ArchSpec::Agg { n_d: 2 }, w, pressure);
    m.run().census
}

#[test]
fn census_categories_are_disjoint_and_complete() {
    for app in ALL_APPS {
        let c = census(app, 0.75);
        // Every mapped line is in exactly one category, so the total is
        // consistent and none dominate impossibly.
        assert!(c.total_lines() > 0, "{app:?}");
        assert!(
            c.shared_with_home_copy <= c.shared_in_p,
            "{app:?}: shared-with-copy exceeds shared"
        );
        assert!(
            c.d_node_only + c.shared_with_home_copy <= c.d_slots,
            "{app:?}: more home copies than Data slots"
        );
    }
}

#[test]
fn lower_pressure_leaves_more_unused_d_memory() {
    // The paper: at 25% pressure ~75% of D-memory is unused; at 75%
    // pressure D-Node-Only lines alone average ~50% of it. Directions,
    // not exact numbers:
    let hi = census(AppId::Fft, 0.75);
    let lo = census(AppId::Fft, 0.25);
    let unused_frac = |c: &Census| c.unused_slots() as f64 / c.d_slots as f64;
    assert!(
        unused_frac(&lo) > unused_frac(&hi),
        "unused D-memory should grow as pressure drops: {:.2} vs {:.2}",
        unused_frac(&lo),
        unused_frac(&hi)
    );
}

#[test]
fn dirty_lines_keep_no_home_place_holder() {
    // Write-heavy kernel: most lines end dirty-in-P, and the census can
    // never count more home copies than slots even then.
    let w = Box::new(pimdsm_workloads::kernels::PrivateStream::new(
        4,
        64 * 1024,
        1,
    ));
    let mut m = Machine::build(ArchSpec::Agg { n_d: 2 }, w, 0.5);
    let r = m.run();
    let c = r.census;
    assert!(c.d_node_only + c.shared_with_home_copy <= c.d_slots);
    m.agg().check_invariants();
}

#[test]
fn pressure_sweep_matches_fig8_direction() {
    // D-Node-Only share of D-memory shrinks as pressure drops (fewer
    // mapped lines per slot).
    let mut previous = f64::INFINITY;
    for pressure in [0.75, 0.5, 0.25] {
        let c = census(AppId::Ocean, pressure);
        let share = c.d_node_only as f64 / c.d_slots as f64;
        assert!(
            share <= previous + 0.05,
            "D-Node-Only share should not grow as pressure drops"
        );
        previous = share;
    }
}
