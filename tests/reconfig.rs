//! Dynamic reconfiguration (Section 2.3 / Figure 10-(a)) integration
//! tests.

use pimdsm::{ArchSpec, Machine, ReconfigPlan};
use pimdsm_workloads::{build_dbase, Scale};

#[test]
fn grow_p_reconfiguration_completes_and_charges_overhead() {
    let w = build_dbase(4, 8, Scale::ci(), false);
    let mut m = Machine::build(ArchSpec::Agg { n_d: 8 }, w, 0.75);
    m.set_reconfig(ReconfigPlan::paper(8, 4)).unwrap();
    let r = m.run();
    assert!(r.reconfig_cycles >= 100_000, "base overhead must be paid");
    assert!(r.threads.iter().all(|t| t.finish > 0));
    assert_eq!(m.agg().p_nodes().len(), 8);
    assert_eq!(m.agg().d_nodes().len(), 4);
    m.agg().check_invariants();
}

#[test]
fn shrink_p_reconfiguration_completes() {
    let w = build_dbase(8, 4, Scale::ci(), false);
    let mut m = Machine::build(ArchSpec::Agg { n_d: 4 }, w, 0.75);
    m.set_reconfig(ReconfigPlan::paper(4, 8)).unwrap();
    let r = m.run();
    assert!(r.reconfig_cycles > 0);
    assert_eq!(m.agg().p_nodes().len(), 4);
    assert_eq!(m.agg().d_nodes().len(), 8);
    m.agg().check_invariants();
}

#[test]
fn reconfigured_run_matches_static_work() {
    // The dynamic machine does the same application work; its protocol
    // read count stays in the same ballpark as the static 8P run.
    let w = build_dbase(8, 8, Scale::ci(), false);
    let r_static = Machine::build(ArchSpec::Agg { n_d: 4 }, w, 0.75).run();

    let w = build_dbase(4, 8, Scale::ci(), false);
    let mut m = Machine::build(ArchSpec::Agg { n_d: 8 }, w, 0.75);
    m.set_reconfig(ReconfigPlan::paper(8, 4)).unwrap();
    let r_dyn = m.run();

    let a = r_static.proto.total_reads() as f64;
    let b = r_dyn.proto.total_reads() as f64;
    assert!(
        (0.5..2.0).contains(&(b / a)),
        "read volumes diverge: static {a}, dynamic {b}"
    );
}

#[test]
fn without_plan_no_overhead_is_charged() {
    let w = build_dbase(4, 4, Scale::ci(), false);
    let r = Machine::build(ArchSpec::Agg { n_d: 4 }, w, 0.75).run();
    assert_eq!(r.reconfig_cycles, 0);
}
