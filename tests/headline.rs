//! Headline reproduction checks: the qualitative results of the paper's
//! evaluation (Section 4) hold on this simulator.
//!
//! These assert *shape* — who wins and in which direction effects point —
//! not absolute numbers, and use margins wide enough to be robust to
//! modeling-parameter drift.

use pimdsm::{ArchSpec, Machine, RunReport};
use pimdsm_proto::Level;
use pimdsm_workloads::{build, AppId, Scale};

fn run(spec: ArchSpec, app: AppId, threads: usize, pressure: f64) -> RunReport {
    Machine::build(spec, build(app, threads, Scale::ci()), pressure).run()
}

/// Section 4.1: architectures that organize local memory as a cache beat
/// the CC-NUMA baseline on applications whose placement is hostile to
/// first-touch (serially initialized SPEC95 codes, FFT).
#[test]
fn agg_beats_numa_on_cache_friendly_apps() {
    for app in [AppId::Tomcatv, AppId::Swim, AppId::Fft] {
        let numa = run(ArchSpec::Numa, app, 16, 0.75);
        let agg = run(ArchSpec::Agg { n_d: 16 }, app, 16, 0.75);
        assert!(
            agg.total_cycles < numa.total_cycles,
            "{app:?}: 1/1AGG ({}) should beat NUMA ({})",
            agg.total_cycles,
            numa.total_cycles
        );
    }
}

/// Figure 7's first-order effect: AGG converts NUMA 2-hop transactions
/// into local-memory transactions.
#[test]
fn agg_converts_remote_reads_to_local() {
    let app = AppId::Swim;
    let numa = run(ArchSpec::Numa, app, 16, 0.75);
    let agg = run(ArchSpec::Agg { n_d: 16 }, app, 16, 0.75);
    let hop2 = |r: &RunReport| r.proto.reads_by_level[Level::Hop2.index()];
    let local = |r: &RunReport| r.proto.reads_by_level[Level::LocalMem.index()];
    // At CI scale only a couple of stencil iterations run, so the
    // attraction only amortizes once; the reduction grows with scale.
    assert!(
        hop2(&agg) < hop2(&numa) * 4 / 5,
        "AGG 2hops {} should be below NUMA's {}",
        hop2(&agg),
        hop2(&numa)
    );
    assert!(
        local(&agg) > local(&numa),
        "AGG local-memory reads {} should exceed NUMA's {}",
        local(&agg),
        local(&numa)
    );
}

/// Reducing D-nodes (1/1 → 1/4) slows applications down only moderately —
/// the headline cost-effectiveness claim. We allow a generous bound
/// (the paper reports ~12% at full scale; scaled-down runs concentrate
/// the startup attraction phase, which inflates D-node contention).
#[test]
fn reduced_d_nodes_cost_is_bounded() {
    for app in [AppId::Tomcatv, AppId::Fft] {
        let full = run(ArchSpec::Agg { n_d: 16 }, app, 16, 0.75);
        let quarter = run(ArchSpec::Agg { n_d: 4 }, app, 16, 0.75);
        let ratio = quarter.total_cycles as f64 / full.total_cycles as f64;
        assert!(
            ratio < 4.0,
            "{app:?}: 1/4AGG is {ratio:.2}x of 1/1AGG — D-node reduction collapsed"
        );
        assert!(
            ratio > 0.8,
            "{app:?}: 1/4AGG unexpectedly faster than 1/1AGG by {ratio:.2}x"
        );
    }
}

/// Lower memory pressure means more caching headroom: AGG at 25% pressure
/// is at least as fast as at 75%.
#[test]
fn lower_pressure_does_not_hurt() {
    for app in [AppId::Fft, AppId::Ocean] {
        let hi = run(ArchSpec::Agg { n_d: 8 }, app, 8, 0.75);
        let lo = run(ArchSpec::Agg { n_d: 8 }, app, 8, 0.25);
        assert!(
            lo.total_cycles <= hi.total_cycles * 11 / 10,
            "{app:?}: 25% pressure ({}) much slower than 75% ({})",
            lo.total_cycles,
            hi.total_cycles
        );
    }
}

/// AGG never injects — displaced master lines always go home — while
/// COMA does inject (Section 2.2.2 vs the COMA baseline).
#[test]
fn agg_never_injects_coma_does() {
    let app = AppId::Swim;
    let agg = run(ArchSpec::Agg { n_d: 8 }, app, 8, 0.75);
    assert_eq!(agg.proto.injections, 0, "AGG must never inject");
    assert!(agg.proto.write_backs > 0, "displacements go home instead");
    let coma = run(ArchSpec::Coma, app, 8, 0.75);
    assert!(
        coma.proto.injections > 0,
        "COMA at high pressure must inject displaced masters"
    );
}

/// NUMA's directory is on chip (hardware, overlapped); AGG's software
/// handlers make its uncontended remote reads slower — yet its *count* of
/// remote reads is what wins the war.
#[test]
fn numa_is_pressure_insensitive_agg_is_not() {
    let app = AppId::Ocean;
    let numa_hi = run(ArchSpec::Numa, app, 8, 0.75);
    let numa_lo = run(ArchSpec::Numa, app, 8, 0.25);
    // NUMA has no attraction memory: pressure only changes page spill,
    // so the two runs stay close.
    let ratio = numa_hi.total_cycles as f64 / numa_lo.total_cycles as f64;
    assert!(
        (0.5..2.0).contains(&ratio),
        "NUMA pressure sensitivity out of band: {ratio:.2}"
    );
}
