//! Cross-crate integration tests of the `pimdsm-lab` orchestration
//! subsystem: the executor's job-count independence, the content-
//! addressed cache's resume semantics, and the suite renderers — the
//! properties the lab's CLI contract (`run --jobs N`, warm re-runs,
//! `results/<suite>.json`) is built on.

use pimdsm_lab::{find, run_sweep, Instrumentation, ResultCache, SuiteCtx};
use pimdsm_obs::ToJson;
use pimdsm_workloads::Scale;

fn ctx() -> SuiteCtx {
    SuiteCtx {
        threads: 4,
        scale: Scale::ci(),
    }
}

fn tmp_cache(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pimdsm-lab-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// `--jobs` must never change a byte of any output: same reports, same
/// rendered text, whatever the worker count.
#[test]
fn smoke_suite_is_jobs_invariant() {
    let ctx = ctx();
    let suite = find("smoke").expect("smoke suite exists");
    let run = |jobs: usize| {
        let result = run_sweep(
            suite.points(&ctx),
            None,
            &Instrumentation::default(),
            jobs,
            false,
        );
        let reports = result.reports().expect("no failures");
        let json: Vec<String> = reports
            .iter()
            .map(|r| r.to_json().render_pretty())
            .collect();
        let text = suite.render(&ctx, &reports);
        (json, text)
    };
    let serial = run(1);
    for jobs in [2, 4, 8] {
        assert_eq!(serial, run(jobs), "jobs={jobs} changed output bytes");
    }
}

/// A warm second sweep is served entirely from the cache and renders the
/// same bytes the cold sweep did — the resume-an-interrupted-sweep
/// guarantee.
#[test]
fn warm_rerun_hits_cache_and_renders_identically() {
    let ctx = ctx();
    let suite = find("smoke").unwrap();
    let dir = tmp_cache("warm");
    let cache = ResultCache::new(&dir);
    let inst = Instrumentation::default();

    let cold = run_sweep(suite.points(&ctx), Some(&cache), &inst, 2, false);
    assert_eq!(cold.hits, 0, "cold cache");
    assert_eq!(cold.misses, suite.points(&ctx).len());

    let warm = run_sweep(suite.points(&ctx), Some(&cache), &inst, 2, false);
    assert_eq!(warm.misses, 0, "warm run re-simulated a point");
    assert!(warm.hit_rate() >= 0.9, "CI gate: >=90% hits on a warm run");

    let cold_text = suite.render(&ctx, &cold.reports().unwrap());
    let warm_text = suite.render(&ctx, &warm.reports().unwrap());
    assert_eq!(cold_text, warm_text, "cache must not change rendered bytes");
    let _ = std::fs::remove_dir_all(&dir);
}

/// An interrupted sweep resumes: points already cached are not re-run,
/// the rest are simulated and the combined output is complete.
#[test]
fn partial_cache_resumes_the_remainder() {
    let ctx = ctx();
    let suite = find("smoke").unwrap();
    let dir = tmp_cache("resume");
    let cache = ResultCache::new(&dir);
    let points = suite.points(&ctx);

    // Simulate an interrupted sweep: only the first half was cached.
    let half: Vec<_> = points[..2].to_vec();
    run_sweep(half, Some(&cache), &Instrumentation::default(), 1, false);

    let resumed = run_sweep(
        points.clone(),
        Some(&cache),
        &Instrumentation::default(),
        2,
        false,
    );
    assert_eq!(resumed.hits, 2, "first half came from the cache");
    assert_eq!(
        resumed.misses,
        points.len() - 2,
        "second half was simulated"
    );
    assert!(resumed.reports().is_some(), "complete output after resume");
    let _ = std::fs::remove_dir_all(&dir);
}

/// fig6 and fig7 describe the same 49 simulations; running fig6 must warm
/// the cache for fig7 (the cache key excludes the suite name).
#[test]
fn cache_is_shared_across_suites() {
    let ctx = ctx();
    let dir = tmp_cache("cross");
    let cache = ResultCache::new(&dir);
    let inst = Instrumentation::default();

    let fig6 = find("fig6").unwrap().points(&ctx);
    let fig7 = find("fig7").unwrap().points(&ctx);
    // Only run the first few points to keep the test quick.
    run_sweep(fig6[..3].to_vec(), Some(&cache), &inst, 2, false);
    let r = run_sweep(fig7[..3].to_vec(), Some(&cache), &inst, 2, false);
    assert_eq!(r.hits, 3, "fig7 reuses fig6's entries");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The cache key is bound to the workspace fingerprint: entries written
/// under a different fingerprint (i.e. by a differently-built simulator)
/// are invisible.
#[test]
fn code_change_invalidates_cache() {
    let ctx = ctx();
    let suite = find("smoke").unwrap();
    let dir = tmp_cache("fingerprint");
    let inst = Instrumentation::default();

    let old = ResultCache::with_fingerprint(&dir, "0000000000000001");
    run_sweep(suite.points(&ctx), Some(&old), &inst, 1, false);

    let new = ResultCache::with_fingerprint(&dir, "0000000000000002");
    let r = run_sweep(suite.points(&ctx), Some(&new), &inst, 1, false);
    assert_eq!(r.hits, 0, "new fingerprint must not see old entries");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The report JSON round-trip the cache depends on, exercised through a
/// real simulation (not just the synthetic report of the unit tests).
#[test]
fn cached_reports_rerender_byte_identically() {
    let ctx = ctx();
    let suite = find("fig10b").unwrap();
    let dir = tmp_cache("bytes");
    let cache = ResultCache::new(&dir);
    let inst = Instrumentation::default();
    let points: Vec<_> = suite.points(&ctx)[..2].to_vec();

    let cold = run_sweep(points.clone(), Some(&cache), &inst, 1, false);
    let warm = run_sweep(points, Some(&cache), &inst, 1, false);
    for (c, w) in cold.outcomes.iter().zip(&warm.outcomes) {
        assert_eq!(
            c.report.as_ref().unwrap().to_json().render_pretty(),
            w.report.as_ref().unwrap().to_json().render_pretty(),
            "{}",
            c.spec.key()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
