//! Cross-architecture integration matrix: every application completes on
//! every machine organization, with sane statistics.

use pimdsm::{ArchSpec, Machine, RunReport};
use pimdsm_workloads::{build, Scale, ALL_APPS};

fn run(spec: ArchSpec, app: pimdsm_workloads::AppId, threads: usize, pressure: f64) -> RunReport {
    let w = build(app, threads, Scale::ci());
    Machine::build(spec, w, pressure).run()
}

#[test]
fn every_app_completes_on_every_architecture() {
    for app in ALL_APPS {
        for spec in [
            ArchSpec::Numa,
            ArchSpec::Coma,
            ArchSpec::Agg { n_d: 8 },
            ArchSpec::Agg { n_d: 2 },
        ] {
            let r = run(spec, app, 8, 0.75);
            assert!(r.total_cycles > 0, "{app:?} on {spec:?} did no work");
            assert_eq!(r.threads.len(), 8);
            assert!(
                r.threads.iter().all(|t| t.finish > 0),
                "{app:?} on {spec:?}: unfinished threads"
            );
            assert!(
                r.proto.total_reads() > 0,
                "{app:?} on {spec:?}: no reads recorded"
            );
        }
    }
}

#[test]
fn every_app_completes_at_low_pressure() {
    for app in ALL_APPS {
        let r = run(ArchSpec::Agg { n_d: 4 }, app, 4, 0.25);
        assert!(r.total_cycles > 0, "{app:?}");
    }
}

#[test]
fn thread_accounting_is_consistent() {
    for spec in [ArchSpec::Numa, ArchSpec::Coma, ArchSpec::Agg { n_d: 4 }] {
        let r = run(spec, pimdsm_workloads::AppId::Ocean, 4, 0.75);
        for (i, t) in r.threads.iter().enumerate() {
            // Nothing a thread did can exceed the run length.
            assert!(
                t.finish <= r.total_cycles,
                "{spec:?} thread {i} finished after the run ended"
            );
            assert!(
                t.compute + t.memory + t.sync <= t.finish + 1,
                "{spec:?} thread {i}: accounted time {} exceeds finish {}",
                t.compute + t.memory + t.sync,
                t.finish
            );
        }
    }
}

#[test]
fn read_level_counts_sum_to_total_reads() {
    let r = run(
        ArchSpec::Agg { n_d: 8 },
        pimdsm_workloads::AppId::Fft,
        8,
        0.75,
    );
    let sum: u64 = r.proto.reads_by_level.iter().sum();
    assert_eq!(sum, r.proto.total_reads());
    // Latency sums only where reads exist.
    for i in 0..5 {
        if r.proto.reads_by_level[i] == 0 {
            assert_eq!(r.proto.read_latency_by_level[i], 0);
        }
    }
}

#[test]
fn agg_invariants_hold_after_full_runs() {
    for app in ALL_APPS {
        let w = build(app, 6, Scale::ci());
        let mut m = Machine::build(ArchSpec::Agg { n_d: 3 }, w, 0.75);
        m.run();
        m.agg().check_invariants();
    }
}
