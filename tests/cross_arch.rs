//! Cross-architecture integration matrix: every application completes on
//! every machine organization, with sane statistics — plus a randomized
//! property test driving identical access traces through all three
//! memory systems under the coherence oracle.

use proptest::prelude::*;

use pimdsm::{ArchSpec, Machine, RunReport};
use pimdsm_proto::{AggCfg, AggSystem, ComaCfg, ComaSystem, MemSystem, NumaCfg, NumaSystem};
use pimdsm_workloads::{build, Scale, ALL_APPS};

fn run(spec: ArchSpec, app: pimdsm_workloads::AppId, threads: usize, pressure: f64) -> RunReport {
    let w = build(app, threads, Scale::ci());
    Machine::build(spec, w, pressure).run()
}

#[test]
fn every_app_completes_on_every_architecture() {
    for app in ALL_APPS {
        for spec in [
            ArchSpec::Numa,
            ArchSpec::Coma,
            ArchSpec::Agg { n_d: 8 },
            ArchSpec::Agg { n_d: 2 },
        ] {
            let r = run(spec, app, 8, 0.75);
            assert!(r.total_cycles > 0, "{app:?} on {spec:?} did no work");
            assert_eq!(r.threads.len(), 8);
            assert!(
                r.threads.iter().all(|t| t.finish > 0),
                "{app:?} on {spec:?}: unfinished threads"
            );
            assert!(
                r.proto.total_reads() > 0,
                "{app:?} on {spec:?}: no reads recorded"
            );
        }
    }
}

#[test]
fn every_app_completes_at_low_pressure() {
    for app in ALL_APPS {
        let r = run(ArchSpec::Agg { n_d: 4 }, app, 4, 0.25);
        assert!(r.total_cycles > 0, "{app:?}");
    }
}

#[test]
fn thread_accounting_is_consistent() {
    for spec in [ArchSpec::Numa, ArchSpec::Coma, ArchSpec::Agg { n_d: 4 }] {
        let r = run(spec, pimdsm_workloads::AppId::Ocean, 4, 0.75);
        for (i, t) in r.threads.iter().enumerate() {
            // Nothing a thread did can exceed the run length.
            assert!(
                t.finish <= r.total_cycles,
                "{spec:?} thread {i} finished after the run ended"
            );
            assert!(
                t.compute + t.memory + t.sync <= t.finish + 1,
                "{spec:?} thread {i}: accounted time {} exceeds finish {}",
                t.compute + t.memory + t.sync,
                t.finish
            );
        }
    }
}

#[test]
fn read_level_counts_sum_to_total_reads() {
    let r = run(
        ArchSpec::Agg { n_d: 8 },
        pimdsm_workloads::AppId::Fft,
        8,
        0.75,
    );
    let sum: u64 = r.proto.reads_by_level.iter().sum();
    assert_eq!(sum, r.proto.total_reads());
    // Latency sums only where reads exist.
    for i in 0..5 {
        if r.proto.reads_by_level[i] == 0 {
            assert_eq!(r.proto.read_latency_by_level[i], 0);
        }
    }
}

#[test]
fn agg_invariants_hold_after_full_runs() {
    for app in ALL_APPS {
        let w = build(app, 6, Scale::ci());
        let mut m = Machine::build(ArchSpec::Agg { n_d: 3 }, w, 0.75);
        m.run();
        m.agg().check_invariants();
        m.check_coherence();
    }
}

#[derive(Debug, Clone, Copy)]
struct Access {
    node: usize,
    line: u64,
    write: bool,
}

fn accesses(nodes: usize, lines: u64) -> impl Strategy<Value = Vec<Access>> {
    proptest::collection::vec(
        (0..nodes, 0u64..lines, any::<bool>()).prop_map(|(node, line, write)| Access {
            node,
            line,
            write,
        }),
        1..250,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The same interleaved trace, replayed on all three architectures:
    /// every access completes no earlier than it issued, its component
    /// breakdown sums exactly to its latency, and the full-sweep
    /// coherence oracle is clean afterwards. (With the
    /// `pimdsm-proto/coherence-oracle` feature on, the per-transaction
    /// oracle additionally fires after every single access.)
    #[test]
    fn identical_traces_hold_invariants_on_all_architectures(ops in accesses(4, 96)) {
        let mut systems: Vec<Box<dyn MemSystem>> = vec![
            Box::new(NumaSystem::new(NumaCfg::paper(4, 8, 32, 4096))),
            Box::new(ComaSystem::new(ComaCfg::paper(4, 8, 32, 4096))),
            Box::new(AggSystem::new(AggCfg::paper(4, 2, 8, 32, 2048, 4096))),
        ];
        for sys in &mut systems {
            let compute = sys.compute_nodes();
            let mut t = 0u64;
            for &Access { node, line, write } in &ops {
                t += 400;
                let addr = line * 64;
                let a = if write {
                    sys.write(compute[node], addr, t)
                } else {
                    sys.read(compute[node], addr, t)
                };
                prop_assert!(
                    a.done_at >= t,
                    "{}: completion {} before issue {t}",
                    sys.name(),
                    a.done_at
                );
                prop_assert_eq!(
                    a.breakdown.iter().sum::<u64>(),
                    a.done_at - t,
                    "{}: breakdown must sum to the access latency",
                    sys.name()
                );
            }
            sys.check_coherence();
            let total: u64 = sys.stats().reads_by_level.iter().sum();
            prop_assert_eq!(total, sys.stats().total_reads());
        }
    }
}
