//! Observability integration tests: the machine-readable outputs are
//! schema-valid, round-trip through the JSON layer, and tracing does not
//! perturb the simulation.

use pimdsm::{ArchSpec, Machine};
use pimdsm_obs::{json, EpochSeries, ToJson, Tracer};
use pimdsm_workloads::{build, AppId, Scale};

fn agg_machine() -> Machine {
    // A 4-node AGG machine (3 P-nodes + 1 D-node) on the smallest scale.
    Machine::build(
        ArchSpec::Agg { n_d: 1 },
        build(AppId::Fft, 3, Scale::ci()),
        0.75,
    )
    .with_label("1/3AGG75")
}

#[test]
fn run_report_json_round_trips() {
    let mut m = agg_machine();
    m.sample_epochs(10_000);
    let report = m.run();
    let doc = report.to_json();
    let text = doc.render_pretty();
    let parsed = json::parse(&text).expect("report JSON parses");
    assert_eq!(parsed, doc, "render → parse is the identity");

    // Spot-check the schema against the source report.
    assert_eq!(parsed.get("arch").unwrap().as_str(), Some("AGG"));
    assert_eq!(parsed.get("app").unwrap().as_str(), Some("FFT"));
    assert_eq!(
        parsed.get("total_cycles").unwrap().as_u64(),
        Some(report.total_cycles)
    );
    let threads = parsed.get("threads").unwrap().as_arr().unwrap();
    assert_eq!(threads.len(), report.threads.len());
    assert_eq!(
        threads[0].get("memory").unwrap().as_u64(),
        Some(report.threads[0].memory)
    );
    let proto = parsed.get("proto").unwrap();
    assert_eq!(
        proto
            .get("reads_by_level")
            .unwrap()
            .get("2Hop")
            .unwrap()
            .as_u64(),
        Some(report.proto.reads_by_level[3])
    );
    assert!(parsed.get("census").unwrap().get("d_slots").is_some());
    assert!(parsed.get("net").unwrap().get("messages").is_some());
    // Epoch sampling was on, so the series must be present and non-empty.
    let epochs = parsed.get("epochs").unwrap();
    let series = epochs.get("series").unwrap().as_arr().unwrap();
    assert!(series.len() >= 2, "at least two epoch time-series");
    let ends = epochs.get("ends").unwrap().as_arr().unwrap();
    assert!(!ends.is_empty());
    assert!(ends.windows(2).all(|w| w[0].as_u64() <= w[1].as_u64()));
}

#[test]
fn agg_smoke_run_emits_schema_valid_chrome_trace() {
    let mut m = agg_machine();
    let tracer = Tracer::enabled();
    m.attach_tracer(tracer.clone());
    m.run();

    let text = tracer.to_chrome_json();
    let doc = json::parse(&text).expect("trace is valid JSON");
    let events = doc.as_arr().expect("trace is a JSON array");
    assert!(events.len() > 100, "a real run produces many events");

    let mut subsystems = std::collections::BTreeSet::new();
    let mut last_ts: std::collections::BTreeMap<(u64, u64), u64> =
        std::collections::BTreeMap::new();
    for e in events {
        let ph = e.get("ph").unwrap().as_str().unwrap();
        match ph {
            // Metadata records carry a process name.
            "M" => {
                assert!(e.get("args").unwrap().get("name").is_some());
                continue;
            }
            "X" => {
                assert!(e.get("dur").unwrap().as_u64().unwrap() >= 1);
            }
            "i" => {
                assert_eq!(e.get("s").unwrap().as_str(), Some("t"));
            }
            other => panic!("unexpected phase {other:?}"),
        }
        let cat = e.get("cat").unwrap().as_str().unwrap();
        subsystems.insert(cat.split('.').next().unwrap().to_string());
        let pid = e.get("pid").unwrap().as_u64().unwrap();
        let tid = e.get("tid").unwrap().as_u64().unwrap();
        let ts = e.get("ts").unwrap().as_u64().unwrap();
        let last = last_ts.entry((pid, tid)).or_insert(0);
        assert!(ts >= *last, "timestamps monotone per (pid,tid) track");
        *last = ts;
    }
    assert!(
        subsystems.len() >= 3,
        "events from at least three subsystems, got {subsystems:?}"
    );
}

#[test]
fn tracing_and_sampling_do_not_perturb_the_simulation() {
    let baseline = agg_machine().run();

    let mut traced = agg_machine();
    traced.attach_tracer(Tracer::enabled());
    traced.sample_epochs(5_000);
    let observed = traced.run();

    assert_eq!(baseline.total_cycles, observed.total_cycles);
    assert_eq!(baseline.proto.reads_by_level, observed.proto.reads_by_level);
    assert_eq!(baseline.net.messages, observed.net.messages);
    assert_eq!(baseline.threads, observed.threads);
}

#[test]
fn epoch_series_cover_the_run() {
    let mut m = agg_machine();
    m.sample_epochs(10_000);
    let report = m.run();
    let epochs: &EpochSeries = report.epochs.as_ref().expect("sampling was enabled");
    assert_eq!(epochs.epoch_cycles, 10_000);
    assert_eq!(*epochs.ends.last().unwrap(), report.total_cycles);
    for series in &epochs.series {
        assert_eq!(series.points.len(), epochs.ends.len(), "{}", series.name);
    }
    // Controller utilization is a per-cycle rate; occupancy is booked
    // ahead on resource timelines, so a single window can transiently
    // exceed 1, but it stays non-negative, finite and of order one.
    let util = epochs.series_named("controller_util").unwrap();
    assert!(util
        .points
        .iter()
        .all(|&p| p.is_finite() && (0.0..10.0).contains(&p)));
    // The run performs reads, so the reads series must not be all zero.
    let reads = epochs.series_named("reads").unwrap();
    assert!(reads.points.iter().sum::<f64>() > 0.0);
}
