//! Reproduction harness for *"Toward a Cost-Effective DSM Organization
//! That Exploits Processor-Memory Integration"* (HPCA 2000).
//!
//! This crate hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`); the library itself simply
//! re-exports the workspace crates for convenience.
//!
//! See the `pimdsm` crate for the machine API and `pimdsm-bench` for the
//! binaries that regenerate every table and figure of the paper.

pub use pimdsm;
pub use pimdsm_engine as engine;
pub use pimdsm_mem as mem;
pub use pimdsm_net as net;
pub use pimdsm_obs as obs;
pub use pimdsm_proto as proto;
pub use pimdsm_workloads as workloads;
