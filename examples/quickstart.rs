//! Quickstart: build an AGG machine, run one application, read the report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pimdsm::{ArchSpec, Machine};
use pimdsm_proto::Level;
use pimdsm_workloads::{build, AppId, Scale};

fn main() {
    // 8 application threads on 8 P-nodes, with 8 D-nodes running the
    // coherence protocol in software (the paper's 1/1 ratio), at 75%
    // memory pressure.
    let workload = build(AppId::Fft, 8, Scale::ci());
    let mut machine = Machine::build(ArchSpec::Agg { n_d: 8 }, workload, 0.75);
    let report = machine.run();

    println!("{}", report.summary());
    println!();
    println!("execution time : {} cycles", report.total_cycles);
    println!("memory stall   : {:.1}%", report.memory_fraction() * 100.0);
    println!("D-node busy    : {:.1}%", report.controller_util * 100.0);
    println!();
    println!("reads by satisfaction level:");
    for level in Level::ALL {
        let n = report.proto.reads_by_level[level.index()];
        let lat = report.proto.read_latency_by_level[level.index()];
        println!(
            "  {:<8} {:>8} reads, avg {:>5} cycles",
            level.label(),
            n,
            lat.checked_div(n).unwrap_or(0)
        );
    }
    println!();
    let c = report.census;
    println!("line-state census (Figure 8 quantities):");
    println!("  dirty in P-node   : {}", c.dirty_in_p);
    println!("  shared in P-node  : {}", c.shared_in_p);
    println!("  D-node only       : {}", c.d_node_only);
    println!("  D-node slots      : {}", c.d_slots);
}
