//! Computation in memory (Section 2.4): D-nodes are full processors, so
//! the select scans of a database query can run *at the memory* and send
//! back only matching-record pointers.
//!
//! ```sh
//! cargo run --release --example dbase_offload
//! ```

use pimdsm::{ArchSpec, Machine};
use pimdsm_workloads::{build_dbase, Scale};

fn main() {
    let scale = Scale::ci();
    let (p, d) = (12usize, 4usize);
    println!("Dbase (TPC-D Q3) on {p}P & {d}D AGG, 75% memory pressure\n");

    let plain = {
        let w = build_dbase(p, p, scale, false);
        Machine::build(ArchSpec::Agg { n_d: d }, w, 0.75).run()
    };
    let opt = {
        let w = build_dbase(p, p, scale, true);
        Machine::build(ArchSpec::Agg { n_d: d }, w, 0.75).run()
    };

    println!(
        "Plain (P-nodes traverse the tables) : {:>12} cycles, {:>9} net messages",
        plain.total_cycles, plain.net.messages
    );
    println!(
        "Opt   (D-nodes run the select scan) : {:>12} cycles, {:>9} net messages",
        opt.total_cycles, opt.net.messages
    );
    println!(
        "\nexecution time reduced by {:.1}%, network messages by {:.1}%",
        100.0 * (1.0 - opt.total_cycles as f64 / plain.total_cycles as f64),
        100.0 * (1.0 - opt.net.messages as f64 / plain.net.messages as f64)
    );
}
