//! Compare the three DSM organizations on one application.
//!
//! ```sh
//! cargo run --release --example protocol_compare [app] [threads]
//! # e.g.
//! cargo run --release --example protocol_compare tomcat 16
//! ```

use pimdsm::{ArchSpec, Machine};
use pimdsm_workloads::{build, AppId, Scale, ALL_APPS};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let app = args
        .get(1)
        .and_then(|name| {
            ALL_APPS
                .iter()
                .copied()
                .find(|a| a.name().eq_ignore_ascii_case(name))
        })
        .unwrap_or(AppId::Tomcatv);
    let threads: usize = args.get(2).and_then(|t| t.parse().ok()).unwrap_or(16);

    println!(
        "Comparing DSM organizations on {} with {} threads (75% memory pressure)\n",
        app.name(),
        threads
    );
    let mut base = None;
    for (label, spec) in [
        ("CC-NUMA", ArchSpec::Numa),
        ("flat COMA", ArchSpec::Coma),
        ("1/1 AGG", ArchSpec::Agg { n_d: threads }),
        (
            "1/4 AGG",
            ArchSpec::Agg {
                n_d: (threads / 4).max(1),
            },
        ),
    ] {
        let workload = build(app, threads, Scale::ci());
        let mut machine = Machine::build(spec, workload, 0.75);
        let r = machine.run();
        let b = *base.get_or_insert(r.total_cycles);
        println!(
            "{:<10} {:>12} cycles  ({:.2}x NUMA)  memory {:>5.1}%  2hop {:>6}  3hop {:>6}",
            label,
            r.total_cycles,
            r.total_cycles as f64 / b as f64,
            r.memory_fraction() * 100.0,
            r.proto.reads_by_level[pimdsm_proto::Level::Hop2.index()],
            r.proto.reads_by_level[pimdsm_proto::Level::Hop3.index()],
        );
    }
    println!(
        "\nThe AGG machines use a fraction of the hardware for directory duty, yet the\n\
         tagged local memories absorb the remote working set (compare the 2hop counts)."
    );
}
