//! Reconfigurability (Section 2.3): the same pool of PIM chips can be
//! partitioned into computing (P) and directory (D) nodes in different
//! ways — statically per run, or dynamically at a phase boundary.
//!
//! ```sh
//! cargo run --release --example reconfigure
//! ```

use pimdsm::{ArchSpec, Machine, ReconfigPlan};
use pimdsm_workloads::{build_dbase, Scale};

fn main() {
    let scale = Scale::ci();
    println!("Dbase (TPC-D Q3) on a 16-node AGG machine, 75% memory pressure\n");

    // Static partitions: the hash phase likes directory capacity, the
    // join phase likes compute.
    println!("-- static partitions --");
    let mut results = Vec::new();
    for (p, d) in [(8usize, 8usize), (12, 4), (14, 2)] {
        let w = build_dbase(p, p, scale, false);
        let mut m = Machine::build(ArchSpec::Agg { n_d: d }, w, 0.75);
        let r = m.run();
        println!("  {p:>2}P & {d:>2}D : {:>10} cycles", r.total_cycles);
        results.push(r.total_cycles);
    }

    // Dynamic: run the hash phase at 8P&8D, then convert four D-nodes
    // into P-nodes for the join phase.
    println!("\n-- dynamic reconfiguration at the hash/join boundary --");
    let w = build_dbase(8, 12, scale, false);
    let mut m = Machine::build(ArchSpec::Agg { n_d: 8 }, w, 0.75);
    m.set_reconfig(ReconfigPlan::paper(12, 4))
        .expect("dbase reconfigures at the hash/join boundary");
    let r = m.run();
    println!(
        "  8P&8D -> 12P&4D : {:>10} cycles (reconfiguration overhead {} cycles)",
        r.total_cycles, r.reconfig_cycles
    );

    let best = results.iter().min().copied().unwrap_or(u64::MAX);
    println!(
        "\n  vs best static: {:+.1}%",
        100.0 * (r.total_cycles as f64 / best as f64 - 1.0)
    );
}
